"""The paper's experiments, reproduced end to end.

Each ``run_*`` function regenerates one table or figure of the paper's
Section 6 (plus ablations DESIGN.md calls out), returning a structured
result with a ``format()`` that prints the same rows/series the paper
reports. The pytest-benchmark wrappers in ``benchmarks/`` call straight
into these functions.

Scale note: the paper used a 2.5M-row SQL Server table and 15000-query
workloads. Costs here are deterministic simulation units, so the
defaults (100k rows, 3000-query workloads in 30 blocks) preserve every
relative comparison while keeping the full suite in seconds; both knobs
are parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.advisor import (ConstrainedGraphAdvisor, GreedySeqAdvisor,
                            Recommendation, UnconstrainedAdvisor)
from ..core.costmatrix import CostMatrices, build_cost_matrices
from ..core.costservice import CostService
from ..core.hybrid import solve_hybrid
from ..core.kaware import (constrained_invariant_violations,
                           solve_constrained)
from ..core.merging import merge_to_k
from ..core.problem import ProblemInstance, enumerate_configurations
from ..core.ranking import solve_by_ranking
from ..core.sequence_graph import solve_unconstrained
from ..core.structures import (Configuration, EMPTY_CONFIGURATION,
                               single_index_configurations)
from ..errors import VerificationError
from ..sqlengine.database import Database
from ..sqlengine.index import IndexDef
from ..verify.checks import (replay_ranking_failures,
                             solver_agreement_failures)
from ..workload.mixes import (PAPER_MIXES, PAPER_VALUE_RANGE,
                              block_labels, make_paper_workload,
                              paper_generator)
from ..workload.model import Workload
from ..workload.segmentation import Segment, segment_by_count
from .evaluate import ReplayReport, estimate_replay, replay_design
from .reporting import format_bars, format_series, format_table

#: The experiments' change-counting convention: the paper's k counts
#: only mid-workload shifts, not the initial index build (see
#: repro.core.kaware for the discussion).
COUNT_INITIAL_CHANGE = False


# ----------------------------------------------------------------------
# shared setup
# ----------------------------------------------------------------------

@dataclass
class PaperSetup:
    """Everything the Section-6 experiments share.

    Attributes:
        db: database with the 4-integer-column table ``t`` loaded.
        nrows / block_size / seed: scale parameters.
        candidates: the six candidate indexes (paper Section 6.1).
        configurations: the seven candidate configurations.
        workloads / segments: W1, W2, W3 and their block segmentation.
        provider: one shared :class:`CostService` — every experiment
            and ablation routes its costing through this instance, so
            matrices built for one figure are cache hits for the next
            (``provider.stats`` meters the whole session).
    """

    db: Database
    nrows: int
    block_size: int
    seed: int
    candidates: List[IndexDef]
    configurations: Tuple[Configuration, ...]
    workloads: Dict[str, Workload]
    segments: Dict[str, List[Segment]]
    provider: CostService

    def problem_for(self, workload_name: str,
                    k: Optional[int] = None) -> ProblemInstance:
        """The paper's problem instance: C0 = final = empty design."""
        return ProblemInstance(
            segments=tuple(self.segments[workload_name]),
            configurations=self.configurations,
            initial=EMPTY_CONFIGURATION, k=k,
            final=EMPTY_CONFIGURATION)


def paper_candidate_indexes(table: str = "t") -> List[IndexDef]:
    """Section 6.1's design space: I(a), I(b), I(c), I(d), I(a,b),
    I(c,d)."""
    return [IndexDef(table, ("a",)), IndexDef(table, ("b",)),
            IndexDef(table, ("c",)), IndexDef(table, ("d",)),
            IndexDef(table, ("a", "b")), IndexDef(table, ("c", "d"))]


def build_paper_setup(nrows: int = 100_000, block_size: int = 100,
                      seed: int = 0) -> PaperSetup:
    """Create the experimental database and workloads.

    The paper's scale is ``nrows=2_500_000, block_size=500``; defaults
    are reduced for bench runtime (see module docstring).
    """
    db = Database()
    db.create_table("t", [("a", "INTEGER"), ("b", "INTEGER"),
                          ("c", "INTEGER"), ("d", "INTEGER")])
    rng = np.random.default_rng(seed)
    lo, hi = PAPER_VALUE_RANGE
    db.bulk_load("t", {column: rng.integers(lo, hi, nrows)
                       for column in ("a", "b", "c", "d")})
    candidates = paper_candidate_indexes()
    configurations = single_index_configurations(candidates)
    workloads: Dict[str, Workload] = {}
    segments: Dict[str, List[Segment]] = {}
    for i, name in enumerate(("W1", "W2", "W3")):
        generator = paper_generator(seed=seed + i + 1)
        workloads[name] = make_paper_workload(
            name, generator, block_size=block_size)
        segments[name] = segment_by_count(workloads[name], block_size)
    provider = CostService(db.what_if())
    return PaperSetup(db=db, nrows=nrows, block_size=block_size,
                      seed=seed, candidates=candidates,
                      configurations=configurations,
                      workloads=workloads, segments=segments,
                      provider=provider)


# ----------------------------------------------------------------------
# Table 1 — workload query mixes
# ----------------------------------------------------------------------

@dataclass
class Table1Result:
    """The four query mixes plus empirically sampled frequencies."""

    declared: Dict[str, Dict[str, float]]
    sampled: Dict[str, Dict[str, float]]
    sample_size: int

    def format(self) -> str:
        headers = ["Mix"] + list(next(iter(self.declared.values())))
        rows = []
        for mix, weights in self.declared.items():
            rows.append([f"Query Mix {mix}"] +
                        [f"{weights[c]:.0%}" for c in weights])
        declared = format_table(headers, rows,
                                title="Table 1: Workload Query Mixes")
        rows = []
        for mix, weights in self.sampled.items():
            rows.append([f"Query Mix {mix}"] +
                        [f"{weights[c]:.1%}" for c in weights])
        sampled = format_table(
            headers, rows,
            title=f"Sampled frequencies (n={self.sample_size}/mix)")
        return declared + "\n\n" + sampled


def run_table1(sample_size: int = 4000, seed: int = 17) -> Table1Result:
    """Reproduce Table 1: the mixes as declared and as sampled."""
    generator = paper_generator(seed=seed)
    declared = {name: dict(mix.weights)
                for name, mix in PAPER_MIXES.items()}
    sampled: Dict[str, Dict[str, float]] = {}
    for name, mix in PAPER_MIXES.items():
        statements = generator.sample(mix, sample_size)
        counts: Dict[str, int] = {c: 0 for c in mix.weights}
        for statement in statements:
            column = statement.sql.split("SELECT ")[1].split(" ")[0]
            counts[column] += 1
        sampled[name] = {c: counts[c] / sample_size
                         for c in mix.weights}
    return Table1Result(declared=declared, sampled=sampled,
                        sample_size=sample_size)


# ----------------------------------------------------------------------
# Table 2 — constrained vs unconstrained designs for W1
# ----------------------------------------------------------------------

@dataclass
class Table2Result:
    """Designs recommended for W1 (k = infinity and k = 2).

    ``rows`` mirrors the paper's Table 2: one row per 500-query block
    with the W1 mix, both designs, and the W2/W3 mixes.
    """

    rows: List[Tuple[str, str, str, str, str, str]]
    unconstrained: Recommendation
    constrained: Recommendation
    problem: ProblemInstance
    matrices: CostMatrices

    def format(self) -> str:
        headers = ["queries", "W1", "k=inf", "k=2", "W2", "W3"]
        return format_table(
            headers, self.rows,
            title="Table 2: Dynamic Workloads and Physical Designs")


def run_table2(setup: PaperSetup, k: int = 2) -> Table2Result:
    """Reproduce Table 2: run both advisors on W1 and lay the designs
    out block by block."""
    problem = setup.problem_for("W1", k=k)
    matrices = build_cost_matrices(problem, setup.provider)
    unconstrained = UnconstrainedAdvisor().recommend(
        problem, setup.provider, matrices)
    constrained = ConstrainedGraphAdvisor(
        k, count_initial_change=COUNT_INITIAL_CHANGE).recommend(
        problem, setup.provider, matrices)
    failures = solver_agreement_failures(
        matrices, k, COUNT_INITIAL_CHANGE, label="table2")
    if failures:
        raise VerificationError(
            "table2 verify pass failed:\n" + "\n".join(failures))
    rows = []
    w1_labels = block_labels("W1")
    w2_labels = block_labels("W2")
    w3_labels = block_labels("W3")
    for block in range(len(w1_labels)):
        lo = block * setup.block_size + 1
        hi = (block + 1) * setup.block_size
        rows.append((f"{lo}-{hi}", w1_labels[block],
                     unconstrained.design[block].label,
                     constrained.design[block].label,
                     w2_labels[block], w3_labels[block]))
    return Table2Result(rows=rows, unconstrained=unconstrained,
                        constrained=constrained, problem=problem,
                        matrices=matrices)


# ----------------------------------------------------------------------
# Figure 3 — workload variations under W1's designs
# ----------------------------------------------------------------------

@dataclass
class Figure3Result:
    """Relative execution times of W1/W2/W3 under both W1 designs.

    Values are normalized to W1 under the unconstrained design (= 1.0),
    exactly like the paper's chart.
    """

    relative: Dict[Tuple[str, str], float]
    reports: Dict[Tuple[str, str], ReplayReport]
    metered: bool

    def format(self) -> str:
        labels, values = [], []
        for workload in ("W1", "W2", "W3"):
            for design in ("unconstrained", "constrained"):
                labels.append(f"{workload} / {design} design")
                values.append(self.relative[(workload, design)])
        title = ("Figure 3: execution time relative to W1 under the "
                 "unconstrained design"
                 + ("" if self.metered else " (cost-model estimate)"))
        return format_bars(labels, values, title=title)

    def slowdown_constrained_w1(self) -> float:
        """The paper's headline: W1 is ~14% slower constrained."""
        return self.relative[("W1", "constrained")] - 1.0


def run_figure3(setup: PaperSetup,
                table2: Optional[Table2Result] = None,
                metered: bool = True) -> Figure3Result:
    """Reproduce Figure 3: replay W1, W2, W3 under both W1-derived
    designs.

    Args:
        setup: the shared experimental setup.
        table2: reuse designs from a prior :func:`run_table2`.
        metered: replay against the live engine (True) or price with
            the cost model only (False, much faster).
    """
    if table2 is None:
        table2 = run_table2(setup)
    designs = {"unconstrained": table2.unconstrained.design,
               "constrained": table2.constrained.design}
    reports: Dict[Tuple[str, str], ReplayReport] = {}
    for workload_name in ("W1", "W2", "W3"):
        segments = setup.segments[workload_name]
        for design_name, design in designs.items():
            if metered:
                report = replay_design(
                    setup.db, segments, design,
                    final_config=EMPTY_CONFIGURATION)
            else:
                report = estimate_replay(
                    setup.provider, segments, design,
                    final_config=EMPTY_CONFIGURATION)
            reports[(workload_name, design_name)] = report
    baseline = reports[("W1", "unconstrained")].total_units
    relative = {key: report.total_units / baseline
                for key, report in reports.items()}
    if metered:
        # Leave the database back in the empty design.
        setup.db.apply_configuration(set())
        # Verify pass: the cost model must rank every replay pair the
        # same way the live engine did, or the estimated and metered
        # versions of this figure would tell different stories.
        estimated = {
            key: estimate_replay(
                setup.provider, setup.segments[key[0]],
                designs[key[1]],
                final_config=EMPTY_CONFIGURATION).total_units
            for key in reports}
        failures = replay_ranking_failures(
            {key: report.total_units
             for key, report in reports.items()}, estimated)
        if failures:
            raise VerificationError(
                "figure3 verify pass failed:\n" + "\n".join(failures))
    return Figure3Result(relative=relative, reports=reports,
                         metered=metered)


# ----------------------------------------------------------------------
# Figure 4 — optimizer runtime vs k
# ----------------------------------------------------------------------

@dataclass
class Figure4Result:
    """Advisor runtimes relative to the unconstrained advisor.

    ``graph_relative[i]`` and ``merging_relative[i]`` are the k-aware
    and merging runtimes at ``ks[i]``, as multiples of the
    unconstrained sequence-graph solve (1.0 = same time) — the paper
    plots the same ratios as percentages.
    """

    ks: List[int]
    graph_relative: List[float]
    merging_relative: List[float]
    unconstrained_seconds: float
    n_segments: int

    def format(self) -> str:
        series = {
            "k-aware graph (x unconstrained)":
                [f"{v:.1f}" for v in self.graph_relative],
            "merging (x unconstrained)":
                [f"{v:.1f}" for v in self.merging_relative],
        }
        return format_series(
            "k", self.ks, series,
            title=(f"Figure 4: optimizer runtime relative to the "
                   f"unconstrained optimizer "
                   f"(n={self.n_segments} segments, "
                   f"unconstrained={self.unconstrained_seconds * 1e3:.2f}"
                   f"ms)"))


def run_figure4(setup: PaperSetup,
                ks: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16, 18),
                segments_per_block: int = 10,
                repeats: int = 5) -> Figure4Result:
    """Reproduce Figure 4: time both constrained techniques across k.

    The workload is re-segmented more finely (``segments_per_block``
    segments per 1 block) so solver runtimes dominate noise; matrices
    are prebuilt, so the timings isolate the search — the quantity the
    paper's figure compares.
    """
    fine_size = max(1, setup.block_size // segments_per_block)
    workload = setup.workloads["W1"]
    segments = segment_by_count(workload, fine_size)
    problem = ProblemInstance(segments=tuple(segments),
                              configurations=setup.configurations,
                              initial=EMPTY_CONFIGURATION,
                              final=EMPTY_CONFIGURATION)
    matrices = build_cost_matrices(problem, setup.provider)

    unconstrained_seconds = _best_time(
        lambda: solve_unconstrained(matrices), repeats)
    unconstrained_assignment = list(
        solve_unconstrained(matrices).assignment)

    graph_relative: List[float] = []
    merging_relative: List[float] = []
    for k in ks:
        # Verify pass: the solution being timed must satisfy the
        # constrained invariants, or the runtimes are meaningless.
        solved = solve_constrained(matrices, k, COUNT_INITIAL_CHANGE)
        violations = constrained_invariant_violations(
            matrices, solved, k,
            count_initial_change=COUNT_INITIAL_CHANGE)
        if violations:
            raise VerificationError(
                f"figure4 verify pass failed at k={k}: "
                + "; ".join(violations))
        graph_seconds = _best_time(
            lambda: solve_constrained(matrices, k,
                                      COUNT_INITIAL_CHANGE), repeats)
        merging_seconds = _best_time(
            lambda: merge_to_k(matrices, unconstrained_assignment, k,
                               COUNT_INITIAL_CHANGE), repeats)
        # Merging needs the unconstrained solution first; charge it.
        merging_seconds += unconstrained_seconds
        graph_relative.append(graph_seconds / unconstrained_seconds)
        merging_relative.append(merging_seconds / unconstrained_seconds)
    return Figure4Result(ks=list(ks), graph_relative=graph_relative,
                         merging_relative=merging_relative,
                         unconstrained_seconds=unconstrained_seconds,
                         n_segments=len(segments))


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Ablation A — GREEDY-SEQ candidate reduction
# ----------------------------------------------------------------------

@dataclass
class GreedySeqAblationResult:
    """Quality/speed of GREEDY-SEQ reduction vs the full config space."""

    k: Optional[int]
    full_cost: float
    reduced_cost: float
    full_configs: int
    reduced_configs: int
    full_seconds: float
    reduced_seconds: float

    @property
    def cost_ratio(self) -> float:
        return self.reduced_cost / self.full_cost

    def format(self) -> str:
        rows = [
            ["full space", self.full_configs, f"{self.full_cost:.1f}",
             f"{self.full_seconds * 1e3:.1f}ms"],
            ["greedy-seq", self.reduced_configs,
             f"{self.reduced_cost:.1f}",
             f"{self.reduced_seconds * 1e3:.1f}ms"],
        ]
        return format_table(
            ["candidates", "configs", "cost", "time"], rows,
            title=(f"Ablation A: GREEDY-SEQ reduction (k={self.k}); "
                   f"cost ratio {self.cost_ratio:.3f}"))


def run_ablation_greedy_seq(setup: PaperSetup, k: Optional[int] = 2,
                            max_indexes: int = 2
                            ) -> GreedySeqAblationResult:
    """Compare the k-aware optimum over the *full* multi-index config
    space against GREEDY-SEQ's reduced space."""
    what_if = setup.provider.optimizer
    full_configs = enumerate_configurations(
        setup.candidates,
        size_fn=lambda c: what_if.configuration_size_bytes(c.indexes),
        max_indexes=max_indexes)
    problem = ProblemInstance(
        segments=tuple(setup.segments["W1"]),
        configurations=tuple(full_configs),
        initial=EMPTY_CONFIGURATION, k=k, final=EMPTY_CONFIGURATION)

    start = time.perf_counter()
    matrices = build_cost_matrices(problem, setup.provider)
    if k is None:
        full = solve_unconstrained(matrices)
        full_cost = full.cost
    else:
        full_cost = solve_constrained(matrices, k,
                                      COUNT_INITIAL_CHANGE).cost
    full_seconds = time.perf_counter() - start

    advisor = GreedySeqAdvisor(k, count_initial_change=
                               COUNT_INITIAL_CHANGE)
    reduced = advisor.recommend(problem, setup.provider)
    return GreedySeqAblationResult(
        k=k, full_cost=full_cost, reduced_cost=reduced.cost,
        full_configs=len(full_configs),
        reduced_configs=int(reduced.stats["candidates"]),
        full_seconds=full_seconds,
        reduced_seconds=reduced.wall_time_seconds)


# ----------------------------------------------------------------------
# Ablation B — ranking effort vs k
# ----------------------------------------------------------------------

@dataclass
class RankingAblationResult:
    """Paths the ranking solver enumerates as k shrinks, with
    optimality cross-checked against the k-aware DP."""

    ks: List[int]
    paths_examined: List[int]
    optimal: List[bool]
    n_segments: int

    def format(self) -> str:
        series = {"paths examined": self.paths_examined,
                  "matches k-aware optimum": self.optimal}
        return format_series(
            "k", self.ks, series,
            title=(f"Ablation B: path-ranking effort "
                   f"(n={self.n_segments} segments)"))


def run_ablation_ranking(setup: PaperSetup,
                         ks: Sequence[int] = (6, 5, 4, 3, 2),
                         n_blocks: int = 12,
                         max_paths: int = 500_000
                         ) -> RankingAblationResult:
    """Measure ranking effort on a prefix of W1 (the paper warns the
    worst case explodes for small k — this shows the wall)."""
    workload = setup.workloads["W1"]
    prefix = workload[:n_blocks * setup.block_size]
    segments = segment_by_count(prefix, setup.block_size)
    problem = ProblemInstance(segments=tuple(segments),
                              configurations=setup.configurations,
                              initial=EMPTY_CONFIGURATION,
                              final=EMPTY_CONFIGURATION)
    matrices = build_cost_matrices(problem, setup.provider)
    paths: List[int] = []
    optimal: List[bool] = []
    for k in ks:
        ranked = solve_by_ranking(matrices, k, COUNT_INITIAL_CHANGE,
                                  max_paths=max_paths)
        exact = solve_constrained(matrices, k, COUNT_INITIAL_CHANGE)
        paths.append(ranked.paths_examined)
        optimal.append(abs(ranked.cost - exact.cost) < 1e-6)
    return RankingAblationResult(ks=list(ks), paths_examined=paths,
                                 optimal=optimal,
                                 n_segments=len(segments))


# ----------------------------------------------------------------------
# Ablation C — hybrid switch point
# ----------------------------------------------------------------------

@dataclass
class HybridAblationResult:
    """Which technique the hybrid picks per k, and what it saves.

    The study runs in a *high-churn* regime (TRANS scaled down so the
    unconstrained optimum changes at almost every segment). Note on
    fidelity: our merging implementation prices candidate replacements
    via prefix sums (O(1) per candidate), so on the paper's own
    workload merging simply dominates at every k — the graph-vs-merging
    crossover the paper's Figure 4 anticipates only materializes when
    l (the unconstrained change count) is large relative to k, which
    the churn factor provides.
    """

    ks: List[int]
    methods: List[str]
    hybrid_seconds: List[float]
    graph_seconds: List[float]
    merging_seconds: List[float]
    unconstrained_changes: int

    def format(self) -> str:
        series = {
            "hybrid picks": self.methods,
            "hybrid ms": [f"{s * 1e3:.2f}" for s in self.hybrid_seconds],
            "graph ms": [f"{s * 1e3:.2f}" for s in self.graph_seconds],
            "merging ms":
                [f"{s * 1e3:.2f}" for s in self.merging_seconds],
        }
        return format_series(
            "k", self.ks, series,
            title=(f"Ablation C: hybrid switch point "
                   f"(high-churn: l={self.unconstrained_changes})"))


def run_ablation_hybrid(setup: PaperSetup,
                        ks: Optional[Sequence[int]] = None,
                        segments_per_block: int = 50,
                        churn_factor: float = 0.001,
                        repeats: int = 3) -> HybridAblationResult:
    """Time hybrid vs both pure techniques across k in a high-churn
    regime (TRANS scaled by ``churn_factor``)."""
    fine_size = max(1, setup.block_size // segments_per_block)
    segments = segment_by_count(setup.workloads["W1"], fine_size)
    problem = ProblemInstance(segments=tuple(segments),
                              configurations=setup.configurations,
                              initial=EMPTY_CONFIGURATION,
                              final=EMPTY_CONFIGURATION)
    base = build_cost_matrices(problem, setup.provider)
    matrices = CostMatrices(
        configurations=base.configurations,
        exec_matrix=base.exec_matrix,
        trans_matrix=base.trans_matrix * churn_factor,
        initial_index=base.initial_index,
        final_index=base.final_index)
    unconstrained = solve_unconstrained(matrices)
    unconstrained_assignment = list(unconstrained.assignment)
    l_changes = unconstrained.change_count
    if ks is None:
        # Sweep from deep-constrained to near-unconstrained so the
        # estimate crossover falls inside the range.
        ks = sorted({2, max(3, l_changes // 16),
                     max(4, l_changes // 8), max(5, l_changes // 4),
                     max(6, l_changes // 2),
                     max(7, (3 * l_changes) // 4)})
    methods: List[str] = []
    hybrid_s: List[float] = []
    graph_s: List[float] = []
    merging_s: List[float] = []
    for k in ks:
        result = solve_hybrid(matrices, k, COUNT_INITIAL_CHANGE)
        methods.append(result.method)
        hybrid_s.append(_best_time(
            lambda: solve_hybrid(matrices, k, COUNT_INITIAL_CHANGE),
            repeats))
        graph_s.append(_best_time(
            lambda: solve_constrained(matrices, k,
                                      COUNT_INITIAL_CHANGE), repeats))
        merging_s.append(_best_time(
            lambda: merge_to_k(matrices, unconstrained_assignment, k,
                               COUNT_INITIAL_CHANGE), repeats))
    return HybridAblationResult(ks=list(ks), methods=methods,
                                hybrid_seconds=hybrid_s,
                                graph_seconds=graph_s,
                                merging_seconds=merging_s,
                                unconstrained_changes=l_changes)


# ----------------------------------------------------------------------
# Ablation D — effect of the space bound
# ----------------------------------------------------------------------

@dataclass
class SpaceBoundAblationResult:
    """Constrained design cost as the space bound b varies."""

    bounds_mb: List[float]
    n_configs: List[int]
    costs: List[float]
    k: int

    def format(self) -> str:
        series = {"configs within b": self.n_configs,
                  "optimal cost": [f"{c:.1f}" for c in self.costs]}
        return format_series(
            "b (MB)", [f"{b:.1f}" for b in self.bounds_mb], series,
            title=f"Ablation D: space bound sweep (k={self.k})")


@dataclass
class GranularityAblationResult:
    """Design quality and optimizer cost vs segmentation granularity.

    The paper's Definition 1 works per *statement*; its experiments
    present designs per 500-query *block*. This ablation quantifies
    the trade: how much objective cost does coarser segmentation give
    up, and how much optimizer work does it save?
    """

    segment_sizes: List[int]
    n_segments: List[int]
    costs: List[float]              # at fixed k, evaluated at the
    solve_seconds: List[float]      # finest granularity
    k: int

    def format(self) -> str:
        series = {
            "segments": self.n_segments,
            "design cost": [f"{c:.0f}" for c in self.costs],
            "solve ms": [f"{s * 1e3:.2f}" for s in self.solve_seconds],
        }
        return format_series(
            "segment size", self.segment_sizes, series,
            title=f"Ablation F: segmentation granularity (k={self.k})")


def run_ablation_granularity(setup: PaperSetup, k: int = 2,
                             segment_sizes: Sequence[int] = (
                                 5, 10, 50, 100),
                             repeats: int = 3
                             ) -> GranularityAblationResult:
    """Solve the same W1 problem at several segmentation granularities.

    Every design is *evaluated* at the finest granularity (statement
    blocks of the smallest size) so costs are comparable. Sizes should
    form a divisibility chain (each dividing the next): then a coarse
    design is exactly a fine design constrained to change only on
    coarse boundaries, so costs are non-increasing as segments shrink.
    """
    workload = setup.workloads["W1"]
    finest = min(segment_sizes)
    fine_segments = segment_by_count(workload, finest)
    fine_problem = ProblemInstance(
        segments=tuple(fine_segments),
        configurations=setup.configurations,
        initial=EMPTY_CONFIGURATION, final=EMPTY_CONFIGURATION)
    fine_matrices = build_cost_matrices(fine_problem, setup.provider)

    n_segments: List[int] = []
    costs: List[float] = []
    solve_seconds: List[float] = []
    for size in segment_sizes:
        if size % finest != 0:
            raise ValueError(
                f"segment size {size} must be a multiple of {finest}")
        segments = segment_by_count(workload, size)
        problem = ProblemInstance(
            segments=tuple(segments),
            configurations=setup.configurations,
            initial=EMPTY_CONFIGURATION, final=EMPTY_CONFIGURATION)
        matrices = build_cost_matrices(problem, setup.provider)
        result = solve_constrained(matrices, k, COUNT_INITIAL_CHANGE)
        solve_seconds.append(_best_time(
            lambda: solve_constrained(matrices, k,
                                      COUNT_INITIAL_CHANGE), repeats))
        # Expand the coarse assignment to the fine axis and price it
        # there, so all rows share one objective.
        expansion = size // finest
        fine_assignment: List[int] = []
        for cfg in result.assignment:
            fine_assignment.extend([cfg] * expansion)
        fine_assignment = fine_assignment[:len(fine_segments)]
        costs.append(fine_matrices.sequence_cost(fine_assignment))
        n_segments.append(len(segments))
    return GranularityAblationResult(
        segment_sizes=list(segment_sizes), n_segments=n_segments,
        costs=costs, solve_seconds=solve_seconds, k=k)


@dataclass
class StructureAblationResult:
    """Optimal design cost under different candidate structure kinds.

    The paper defines designs over "structures (e.g., indexes or
    materialized views)" but evaluates indexes only; this ablation
    adds projection views to the space and measures what they buy.
    """

    costs: Dict[str, float]         # space label -> optimal cost
    chosen: Dict[str, List[str]]    # space label -> distinct configs

    def format(self) -> str:
        rows = [[label, f"{self.costs[label]:.1f}",
                 " / ".join(self.chosen[label])]
                for label in self.costs]
        return format_table(
            ["candidate structures", "optimal cost (k=2)",
             "designs used"], rows,
            title="Ablation E: indexes vs materialized views as "
                  "design structures")


def run_ablation_structures(setup: PaperSetup, k: int = 2,
                            span: int = 40_000
                            ) -> StructureAblationResult:
    """Compare candidate spaces of indexes, views, and both on a
    two-column range-scan workload (where projection views shine)."""
    from ..sqlengine.views import ViewDef
    from ..workload.model import Statement, Workload
    rng = np.random.default_rng(setup.seed + 7)
    lo_max = PAPER_VALUE_RANGE[1] - span
    statements = []
    # Three phases like W1, but over column pairs with range scans.
    for phase_pair in (("a", "b"), ("c", "d"), ("a", "b")):
        for i in range(10 * setup.block_size):
            column = phase_pair[i % 2]
            lo = int(rng.integers(0, lo_max))
            statements.append(Statement(
                f"SELECT {phase_pair[0]}, {phase_pair[1]} FROM t "
                f"WHERE {column} BETWEEN {lo} AND {lo + span}"))
    workload = Workload(statements, name="range-pairs")
    segments = segment_by_count(workload, setup.block_size)
    index_candidates = [IndexDef("t", ("a",)), IndexDef("t", ("b",)),
                        IndexDef("t", ("c",)), IndexDef("t", ("d",))]
    view_candidates = [ViewDef("t", ("a", "b")),
                       ViewDef("t", ("c", "d"))]
    spaces = {
        "single-column indexes": index_candidates,
        "projection views": view_candidates,
        "indexes + views": index_candidates + view_candidates,
    }
    costs: Dict[str, float] = {}
    chosen: Dict[str, List[str]] = {}
    for label, candidates in spaces.items():
        problem = ProblemInstance(
            segments=tuple(segments),
            configurations=single_index_configurations(candidates),
            initial=EMPTY_CONFIGURATION, k=k,
            final=EMPTY_CONFIGURATION)
        matrices = build_cost_matrices(problem, setup.provider)
        result = solve_constrained(matrices, k, COUNT_INITIAL_CHANGE)
        costs[label] = result.cost
        labels = []
        for cfg_index in dict.fromkeys(result.assignment):
            labels.append(matrices.configurations[cfg_index].label)
        chosen[label] = labels
    return StructureAblationResult(costs=costs, chosen=chosen)


def run_ablation_space_bound(setup: PaperSetup,
                             bounds_mb: Sequence[float] = (
                                 1.0, 2.0, 4.0, 8.0),
                             k: int = 2,
                             max_indexes: int = 3
                             ) -> SpaceBoundAblationResult:
    """Sweep the space bound over a multi-index configuration space.

    Larger b admits larger (union) configurations, which can only help:
    costs are non-increasing in b — asserted by the integration tests.
    """
    what_if = setup.provider.optimizer
    n_configs: List[int] = []
    costs: List[float] = []
    for bound in bounds_mb:
        configs = enumerate_configurations(
            setup.candidates,
            size_fn=lambda c:
            what_if.configuration_size_bytes(c.indexes),
            space_bound_bytes=int(bound * 1e6),
            max_indexes=max_indexes)
        problem = ProblemInstance(
            segments=tuple(setup.segments["W1"]),
            configurations=tuple(configs),
            initial=EMPTY_CONFIGURATION, k=k,
            space_bound_bytes=int(bound * 1e6),
            final=EMPTY_CONFIGURATION)
        matrices = build_cost_matrices(problem, setup.provider)
        result = solve_constrained(matrices, k, COUNT_INITIAL_CHANGE)
        n_configs.append(len(configs))
        costs.append(result.cost)
    return SpaceBoundAblationResult(bounds_mb=list(bounds_mb),
                                    n_configs=n_configs, costs=costs,
                                    k=k)

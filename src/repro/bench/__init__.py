"""Experiment harness reproducing every table and figure of the paper."""

from .evaluate import (ReplayReport, SegmentReplay, estimate_replay,
                       replay_design)
from .experiments import (COUNT_INITIAL_CHANGE, Figure3Result,
                          Figure4Result, GranularityAblationResult,
                          GreedySeqAblationResult,
                          HybridAblationResult, PaperSetup,
                          RankingAblationResult,
                          SpaceBoundAblationResult,
                          StructureAblationResult, Table1Result,
                          Table2Result, build_paper_setup,
                          paper_candidate_indexes, run_ablation_greedy_seq,
                          run_ablation_hybrid, run_ablation_ranking,
                          run_ablation_granularity,
                          run_ablation_space_bound,
                          run_ablation_structures, run_figure3,
                          run_figure4, run_table1, run_table2)
from .extensions import (KTuningResult, OnlineComparisonResult,
                         RobustnessResult, run_extension_ktuning,
                         run_extension_online,
                         run_extension_robustness)
from .perf import (PerfLeg, PerfReport, perf_candidate_structures,
                   run_perf)
from .reporting import format_bars, format_series, format_table

__all__ = [
    "ReplayReport", "SegmentReplay", "estimate_replay", "replay_design",
    "COUNT_INITIAL_CHANGE", "Figure3Result", "Figure4Result",
    "GreedySeqAblationResult", "HybridAblationResult", "PaperSetup",
    "RankingAblationResult", "SpaceBoundAblationResult", "Table1Result",
    "Table2Result", "build_paper_setup", "paper_candidate_indexes",
    "GranularityAblationResult", "StructureAblationResult",
    "run_ablation_granularity",
    "run_ablation_greedy_seq", "run_ablation_hybrid",
    "run_ablation_ranking", "run_ablation_space_bound",
    "run_ablation_structures", "run_figure3",
    "run_figure4", "run_table1", "run_table2",
    "KTuningResult", "OnlineComparisonResult", "RobustnessResult",
    "run_extension_ktuning", "run_extension_online",
    "run_extension_robustness",
    "PerfLeg", "PerfReport", "perf_candidate_structures", "run_perf",
    "format_bars", "format_series", "format_table",
]

"""Plain-text reporting helpers for the experiment harness.

The paper reports tables (Tables 1-2) and relative-value charts
(Figures 3-4); these helpers render both as ASCII so the benchmark
output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a simple aligned table."""
    columns = [list(map(_cell, column))
               for column in zip(headers, *rows)] if rows else \
        [[_cell(h)] for h in headers]
    widths = [max(len(value) for value in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w)
                            for h, w in zip(map(_cell, headers), widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_cell(v).ljust(w)
                               for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_bars(labels: Sequence[str], values: Sequence[float],
                title: Optional[str] = None, width: int = 50,
                unit: str = "%") -> str:
    """Render horizontal bars of relative values (Figure 3/4 style)."""
    if len(labels) != len(values):
        raise ValueError("labels and values differ in length")
    peak = max(values) if values else 1.0
    peak = peak if peak > 0 else 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_width)}  "
                     f"{value * 100 if unit == '%' else value:8.1f}{unit}"
                     f"  {bar}")
    return "\n".join(lines)


def format_series(x_label: str, xs: Sequence[object], series: dict,
                  title: Optional[str] = None) -> str:
    """Render one row per x with one column per named series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)

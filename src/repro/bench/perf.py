"""Costing-performance benchmark: the repo's benchmark trajectory.

``run_perf`` measures what the atomic cost decomposition and the
parallel matrix builds actually buy on the paper's Table 1 workload
mixes (W1-W3 over the Section 6.1 table), against a space large
enough that parallelism has real work to eat: every mix workload is
enriched with a deterministic set of template-diverse statements
(range scans at several widths per column, ordered scans, two-column
probes — dozens of distinct templates), and the candidate space holds
44 structures (single-column indexes at every compression level,
two-column composites uncompressed and HEAVY, projection views
uncompressed and LIGHT), all configurations of at most two structures
(991 configurations).

Three legs build the EXEC matrices for every mix (plus a TRANS
identity sample) through one :class:`~repro.core.costservice.
CostService` session each:

* ``undecomposed`` — ``CostService(decompose=False)``: the PR-1
  baseline, one what-if estimate per (template, configuration).
* ``decomposed`` — the default service: one estimate per (template,
  relevance signature).
* ``parallel`` — decomposition plus ``n_workers`` process-pool
  fan-out. The leg is split into **cold start** (one-time pool
  spin-up and replica construction, measured by
  ``CostService.warm_pool``) and **steady state** (the matrix builds
  against the warm pool) so the one-time cost no longer pollutes the
  speedup a long-lived service actually sees.

A fourth, *skewed-batch* leg (:func:`run_skew_leg`) pins the
work-stealing scheduler's win where it matters: one wide template
whose ~190 pending signatures are unsplittable under static
one-chunk-per-worker scheduling, plus a long tail of one-item
templates on a side table no candidate serves. It runs the same
batches through ``scheduler="static"`` and ``scheduler="steal"``
services and records per-worker busy-time imbalance and the
tail/median chunk-duration ratio (the straggler metrics the parallel
leg also reports).

The report records wall time per phase, what-if calls,
signature/template cache hit rates, the call-reduction ratio, and
``parallel_speedup`` — the decomposed leg's steady wall over the
parallel leg's steady wall. It *verifies* along the way that all
legs produce bit-identical matrices, and — when the host has enough
cores for the fan-out to physically win (``available_cpus >=
workers`` with ``workers >= 4``) — enforces the ``speedup_floor``
(default 1.5x), the skew leg's :data:`SKEW_IMBALANCE_CEILING`, and
steal-beats-static as failures that flip the CLI exit code. Hosts
with fewer cores record the ratios without enforcing them (a process
pool cannot beat serial on one core); ``params.speedup_enforced``
says which case a given BENCH_PERF.json was.

``repro perf`` drives this and writes ``BENCH_PERF.json``;
``benchmarks/bench_perf.py`` wraps the same entry points under
pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.costservice import (CostService,
                                summarize_parallel_metrics)
from ..core.problem import ProblemInstance, enumerate_configurations
from ..core.structures import Compression, EMPTY_CONFIGURATION
from ..sqlengine.database import Database
from ..sqlengine.index import IndexDef
from ..sqlengine.views import ViewDef
from ..workload.mixes import (PAPER_VALUE_RANGE, make_paper_workload,
                              paper_generator)
from ..workload.model import Statement, Workload
from ..workload.segmentation import Segment, segment_by_count

#: Mixes measured (the Table 1 workloads).
PERF_MIXES = ("W1", "W2", "W3")

#: TRANS identity is cross-checked over this many configurations
#: (the full space would be |C|^2 transition estimates per leg —
#: wall time without information, since TRANS never goes parallel).
TRANS_CHECK_CONFIGS = 48

#: Range widths (per column) of the enrichment statements; each
#: width induces a distinct selectivity, hence a distinct template.
_PERF_SPANS = (2_000, 6_000, 18_000, 54_000, 160_000, 480_000)

#: Ceiling the skewed-batch leg's work-stealing busy-time imbalance
#: must stay under on hosts where enforcement is on (``workers >= 4``
#: granted at least that many CPUs — the PR 7 convention). The static
#: scheduler lands near ``workers`` on the same batch; grain-sized
#: micro-batches keep the pool level.
SKEW_IMBALANCE_CEILING = 1.6

#: Narrow single-pending-item templates per skewed batch (each rides
#: on table ``u``, which no candidate structure serves, so its
#: relevance signature is empty and the whole configuration axis
#: shares one estimate).
_SKEW_NARROW_TEMPLATES = 48


def perf_candidate_structures(table: str = "t") -> List:
    """The benchmark's candidate space: the four single-column
    indexes at every compression level, every ordered two-column
    composite (uncompressed and HEAVY), and four projection views
    (uncompressed and LIGHT) — 44 structures, 991 configurations of
    at most two. Views share relevance signatures with composites on
    the same columns, so the space exercises both structure kinds in
    one signature; the compressed variants are *distinct* candidates
    (distinct geometry, distinct signatures), which is exactly the
    cache-conflation surface the decomposed leg's bit-identity check
    guards."""
    columns = ("a", "b", "c", "d")
    singles = [IndexDef(table, (c,), level) for c in columns
               for level in (Compression.NONE, Compression.LIGHT,
                             Compression.HEAVY)]
    composites = [IndexDef(table, (x, y), level)
                  for x in columns for y in columns if x != y
                  for level in (Compression.NONE, Compression.HEAVY)]
    view_columns = (("a", "b"), ("b", "c"), ("c", "d"), ("a", "d"))
    views = [ViewDef(table, cols, level) for cols in view_columns
             for level in (Compression.NONE, Compression.LIGHT)]
    return singles + composites + views


def perf_template_statements(table: str = "t") -> List[Statement]:
    """Deterministic template-diverse statements appended to every
    mix workload: six range widths per column, one ordered scan per
    column, and four two-column probes — 32 statements spanning
    dozens of distinct :class:`StatementTemplate` keys (every span
    induces its own selectivity). No RNG: the statements are a pure
    function of the value domain, so runs stay reproducible."""
    lo, hi = PAPER_VALUE_RANGE
    columns = ("a", "b", "c", "d")
    statements: List[Statement] = []
    for ci, column in enumerate(columns):
        for si, span in enumerate(_PERF_SPANS):
            start = lo + (ci * len(_PERF_SPANS) + si) * 937
            end = min(hi - 1, start + span)
            statements.append(Statement(
                f"SELECT {column} FROM {table} WHERE {column} "
                f"BETWEEN {start} AND {end}"))
        statements.append(Statement(
            f"SELECT {column} FROM {table} WHERE {column} < "
            f"{lo + (hi - lo) // (ci + 2)} ORDER BY {column}"))
    for x, y in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")):
        statements.append(Statement(
            f"SELECT {x}, {y} FROM {table} WHERE {x} = {lo + 137} "
            f"AND {y} < {lo + (hi - lo) // 3}"))
    return statements


@dataclass
class PerfLeg:
    """One measured matrix-build session (all mixes, one service).

    ``cold_start_seconds`` is one-time pool spin-up (zero for serial
    legs); ``steady_wall_seconds`` is the EXEC matrix builds against
    warm infrastructure — the number ``parallel_speedup`` compares.
    ``wall_seconds`` stays the whole-leg total (cold + exec + trans).
    """

    name: str
    wall_seconds: float
    exec_wall_seconds: float
    trans_wall_seconds: float
    cold_start_seconds: float
    steady_wall_seconds: float
    whatif_calls: int
    whatif_calls_avoided: int
    template_hits: int
    signature_hits: int
    signature_fills: int
    unique_templates: int
    unique_signatures: int
    parallel_batches: int
    serial_cutover_batches: int
    #: Straggler profile (parallel legs only; ``None``/0 on serial
    #: legs): chunks submitted, workers that ran at least one chunk,
    #: max/mean per-worker busy-time ratio, and slowest/median chunk
    #: duration ratio — aggregated over the leg's parallel batches by
    #: :func:`~repro.core.costservice.summarize_parallel_metrics`.
    micro_batches: int = 0
    workers_observed: int = 0
    busy_imbalance: Optional[float] = None
    tail_median_chunk_ratio: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return dict(vars(self))


@dataclass
class PerfReport:
    """Everything ``BENCH_PERF.json`` carries.

    ``failures`` is non-empty iff a leg changed a matrix entry,
    decomposition saved zero what-if calls, or the steady-state
    parallel speedup missed the floor while enforcement was on — the
    conditions CI gates on.
    """

    params: Dict[str, object]
    legs: Dict[str, PerfLeg]
    call_reduction: float
    parallel_speedup: float
    exec_cells: int
    #: Skewed-batch leg results (``None`` when the parallel leg is
    #: skipped): per-scheduler wall/straggler numbers plus the
    #: steal-over-static speedup the work-stealing scheduler is
    #: gated on where enforcement applies.
    skew: Optional[Dict[str, object]] = None
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": "costing-perf",
            "params": self.params,
            "legs": {name: leg.as_dict()
                     for name, leg in self.legs.items()},
            "exec_cells": self.exec_cells,
            "call_reduction": self.call_reduction,
            "parallel_speedup": self.parallel_speedup,
            "skew": self.skew,
            "failures": list(self.failures),
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def format(self) -> str:
        lines = ["costing performance (Table 1 mixes + template "
                 f"enrichment, {self.params['n_configs']} "
                 f"configurations, {self.params['nrows']} rows)"]
        for name in ("undecomposed", "decomposed", "parallel"):
            leg = self.legs.get(name)
            if leg is None:
                continue
            lines.append(
                f"  {name:<12} steady {leg.steady_wall_seconds * 1e3:9.1f} ms"
                f"  cold {leg.cold_start_seconds * 1e3:7.1f} ms"
                f"  what-if calls {leg.whatif_calls:5d}"
                f"  avoided {leg.whatif_calls_avoided:7d}"
                f"  signatures {leg.unique_signatures:4d}")
        lines.append(
            f"  call reduction (undecomposed/decomposed): "
            f"{self.call_reduction:.2f}x")
        if "parallel" in self.legs:
            enforced = "enforced" if self.params.get(
                "speedup_enforced") else (
                "recorded only; "
                f"{self.params.get('available_cpus')} cpu(s) for "
                f"{self.params.get('workers')} workers")
            lines.append(
                f"  parallel speedup (steady serial / steady "
                f"parallel): {self.parallel_speedup:.2f}x "
                f"(floor {self.params.get('speedup_floor')}x, "
                f"{enforced})")
            leg = self.legs["parallel"]
            if leg.busy_imbalance is not None:
                lines.append(
                    f"  parallel stragglers: {leg.micro_batches} "
                    f"micro-batches over {leg.workers_observed} "
                    f"worker(s), busy imbalance "
                    f"{leg.busy_imbalance:.2f}, tail/median chunk "
                    f"{leg.tail_median_chunk_ratio:.2f}")
        if self.skew is not None:
            for scheduler in ("static", "steal"):
                side = self.skew[scheduler]
                lines.append(
                    f"  skew[{scheduler:<6}] steady "
                    f"{side['steady_wall_seconds'] * 1e3:9.1f} ms  "
                    f"micro-batches {side['micro_batches']:4d}  "
                    f"imbalance {side['busy_imbalance']:.2f}  "
                    f"tail/median {side['tail_median_chunk_ratio']:.2f}")
            lines.append(
                f"  skew steal-over-static speedup: "
                f"{self.skew['steal_over_static']:.2f}x "
                f"(imbalance ceiling "
                f"{self.skew['imbalance_ceiling']}, "
                + ("enforced)" if self.skew["enforced"]
                   else "recorded only)"))
        if self.failures:
            lines.append("  FAILURES:")
            lines.extend(f"    - {failure}" for failure in self.failures)
        else:
            lines.append("  all legs bit-identical")
        return "\n".join(lines)


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_perf_database(nrows: int, seed: int) -> Database:
    """The Section 6.1 table at benchmark scale."""
    db = Database()
    db.create_table("t", [("a", "INTEGER"), ("b", "INTEGER"),
                          ("c", "INTEGER"), ("d", "INTEGER")])
    rng = np.random.default_rng(seed)
    lo, hi = PAPER_VALUE_RANGE
    db.bulk_load("t", {column: rng.integers(lo, hi, nrows)
                       for column in ("a", "b", "c", "d")})
    return db


def build_skew_database(nrows: int, seed: int) -> Database:
    """The perf table plus a side table ``u`` that no candidate
    structure serves — its statements decompose to exactly one
    pending item each (empty relevance signature), forming the cheap
    long tail of the skewed batch."""
    db = build_perf_database(nrows, seed)
    rng = np.random.default_rng(seed + 101)
    lo, hi = PAPER_VALUE_RANGE
    db.create_table("u", [("x", "INTEGER"), ("y", "INTEGER")])
    db.bulk_load("u", {column: rng.integers(lo, hi,
                                            max(1_000, nrows // 10))
                       for column in ("x", "y")})
    return db


def build_skew_batch(rep: int, reps: int,
                     n_narrow: int = _SKEW_NARROW_TEMPLATES
                     ) -> Tuple:
    """One deterministically skewed batch: a single *wide* template
    on ``t`` (``SELECT b FROM t WHERE b < X`` — every candidate
    containing ``b`` can serve it, so it decomposes into one pending
    item per relevant subset, ~190 under the 991-configuration
    space) plus ``n_narrow`` one-item templates on ``u``. Under the
    static scheduler the wide row is unsplittable — one worker drags
    the whole batch — while grain-sized micro-batches spread it
    across the pool. Distinct ``rep`` values shift every constant to
    fresh selectivities, so each repetition re-runs the full pending
    workload against warm infrastructure."""
    lo, hi = PAPER_VALUE_RANGE
    span = hi - lo
    wide_bound = lo + int(span * (0.30 + 0.40 * (rep + 1)
                                  / (reps + 1)))
    statements = [Statement(
        f"SELECT b FROM t WHERE b < {wide_bound}")]
    total = reps * n_narrow
    for i in range(n_narrow):
        position = (rep * n_narrow + i + 1) / (total + 1)
        bound = lo + int(span * (0.05 + 0.90 * position))
        statements.append(Statement(
            f"SELECT x FROM u WHERE x < {bound}"))
    return (Segment(tuple(statements), rep),)


def build_perf_problems(db: Database, block_size: int, seed: int
                        ) -> Dict[str, ProblemInstance]:
    """One problem instance per Table 1 mix over the enlarged
    candidate space, each mix workload enriched with the
    template-diverse statements."""
    configurations = tuple(enumerate_configurations(
        perf_candidate_structures(), max_indexes=2))
    extras = perf_template_statements()
    problems: Dict[str, ProblemInstance] = {}
    for i, name in enumerate(PERF_MIXES):
        generator = paper_generator(seed=seed + i + 1)
        workload = make_paper_workload(name, generator,
                                       block_size=block_size)
        enriched = Workload(list(workload) + extras, name=name)
        segments = tuple(segment_by_count(enriched, block_size))
        problems[name] = ProblemInstance(
            segments=segments, configurations=configurations,
            initial=EMPTY_CONFIGURATION, final=EMPTY_CONFIGURATION)
    return problems


def _run_leg(name: str, db: Database,
             problems: Dict[str, ProblemInstance],
             trans_configs: Sequence,
             decompose: bool, n_workers: Optional[int],
             candidates: Sequence = (),
             scheduler: str = "steal",
             steal_grain: Optional[int] = None
             ) -> Tuple[PerfLeg, Dict[str, np.ndarray], np.ndarray]:
    service = CostService(db.what_if(), decompose=decompose,
                          n_workers=n_workers, scheduler=scheduler,
                          steal_grain=steal_grain)
    cold = 0.0
    if n_workers and n_workers > 1:
        # Pool spin-up (worker spawn + replica build + registry
        # ship) is one-time; measure it apart from steady state.
        cold = service.warm_pool(structures=candidates)
    exec_matrices: Dict[str, np.ndarray] = {}
    batch_metrics = []
    start = time.perf_counter()
    for mix, problem in problems.items():
        service.last_parallel_metrics = None
        exec_matrices[mix] = service.exec_matrix(
            problem.segments, problem.configurations)
        batch_metrics.append(service.last_parallel_metrics)
    exec_wall = time.perf_counter() - start
    start = time.perf_counter()
    trans_matrix = service.trans_matrix(trans_configs)
    trans_wall = time.perf_counter() - start
    stats = service.stats
    stragglers = summarize_parallel_metrics(batch_metrics)
    leg = PerfLeg(
        name=name,
        wall_seconds=cold + exec_wall + trans_wall,
        exec_wall_seconds=exec_wall,
        trans_wall_seconds=trans_wall,
        cold_start_seconds=cold,
        steady_wall_seconds=exec_wall,
        whatif_calls=stats.whatif_calls,
        whatif_calls_avoided=stats.whatif_calls_avoided,
        template_hits=stats.template_hits,
        signature_hits=stats.signature_hits,
        signature_fills=stats.signature_fills,
        unique_templates=stats.unique_templates,
        unique_signatures=stats.unique_signatures,
        parallel_batches=stats.parallel_batches,
        serial_cutover_batches=stats.serial_cutover_batches,
        micro_batches=stats.micro_batches,
        workers_observed=stragglers["workers_observed"],
        busy_imbalance=stragglers["busy_imbalance"],
        tail_median_chunk_ratio=stragglers["tail_median_chunk_ratio"])
    service.close()
    return leg, exec_matrices, trans_matrix


def run_skew_leg(nrows: int, seed: int, workers: int,
                 steal_grain: Optional[int], enforced: bool,
                 reps: int = 2) -> Tuple[Dict[str, object],
                                         List[str]]:
    """Measure the skewed-batch leg: the same deterministic skewed
    batches through a static-chunk service and a work-stealing
    service (both against warm pools, both forced parallel), with a
    serial service as the bit-identity reference.

    Returns the ``skew`` report section and any failures. Failures
    outside bit-identity are raised only when ``enforced`` (the PR 7
    convention — ``workers >= 4`` with at least that many CPUs):
    the stealing scheduler's busy imbalance must stay under
    :data:`SKEW_IMBALANCE_CEILING` and its steady wall must beat the
    static baseline.
    """
    db = build_skew_database(nrows, seed)
    configurations = tuple(enumerate_configurations(
        perf_candidate_structures(), max_indexes=2))
    candidates = perf_candidate_structures()
    batches = [build_skew_batch(rep, reps) for rep in range(reps)]

    serial = CostService(db.what_if())
    reference = [serial.exec_matrix(segments, configurations)
                 for segments in batches]
    serial.close()

    failures: List[str] = []
    sides: Dict[str, Dict[str, object]] = {}
    for scheduler in ("static", "steal"):
        service = CostService(db.what_if(), n_workers=workers,
                              parallel_threshold=2,
                              scheduler=scheduler,
                              steal_grain=steal_grain)
        try:
            cold = service.warm_pool(structures=candidates)
            walls: List[float] = []
            batch_metrics = []
            for segments, ref in zip(batches, reference):
                service.last_parallel_metrics = None
                start = time.perf_counter()
                matrix = service.exec_matrix(segments,
                                             configurations)
                walls.append(time.perf_counter() - start)
                batch_metrics.append(service.last_parallel_metrics)
                if not np.array_equal(matrix, ref):
                    failures.append(
                        f"skew[{scheduler}]: EXEC matrix differs "
                        f"from serial")
            if service.stats.parallel_batches < reps:
                failures.append(
                    f"skew[{scheduler}]: a batch cut over to "
                    f"serial")
            stragglers = summarize_parallel_metrics(batch_metrics)
            sides[scheduler] = {
                "cold_start_seconds": cold,
                "steady_wall_seconds": sum(walls),
                "whatif_calls": service.stats.whatif_calls,
                "micro_batches": stragglers["micro_batches"],
                "workers_observed": stragglers["workers_observed"],
                "busy_imbalance": stragglers["busy_imbalance"],
                "tail_median_chunk_ratio":
                    stragglers["tail_median_chunk_ratio"],
            }
        finally:
            service.close()

    steal_wall = sides["steal"]["steady_wall_seconds"]
    static_wall = sides["static"]["steady_wall_seconds"]
    steal_over_static = (static_wall / steal_wall
                         if steal_wall > 0 else 0.0)
    if enforced:
        imbalance = sides["steal"]["busy_imbalance"]
        if imbalance is not None and \
                imbalance > SKEW_IMBALANCE_CEILING:
            failures.append(
                f"skew[steal]: busy imbalance {imbalance:.2f} above "
                f"the {SKEW_IMBALANCE_CEILING} ceiling")
        if steal_over_static < 1.0:
            failures.append(
                f"skew: work stealing slower than static chunking "
                f"({steal_over_static:.2f}x)")
    skew = {
        "reps": reps,
        "n_narrow_templates": _SKEW_NARROW_TEMPLATES,
        "imbalance_ceiling": SKEW_IMBALANCE_CEILING,
        "enforced": enforced,
        "static": sides["static"],
        "steal": sides["steal"],
        "steal_over_static": steal_over_static,
    }
    return skew, failures


def run_perf(nrows: int = 100_000, block_size: int = 100,
             seed: int = 0, workers: int = 4,
             quick: bool = False,
             speedup_floor: float = 1.5,
             steal_grain: Optional[int] = None) -> PerfReport:
    """Measure the three costing legs and cross-check bit-identity.

    Args:
        nrows / block_size / seed: scale parameters (same meaning as
            the other benches).
        workers: process-pool width for the parallel leg; ``0`` skips
            the leg entirely (and the skewed-batch leg with it).
        quick: CI scale — shrinks the table and blocks (the config
            and template spaces stay at full size; they are what the
            speedup floor is measured against).
        speedup_floor: minimum steady-state parallel speedup. The
            floor is *enforced* (a failure below it) only when
            ``workers >= 4`` and the host grants at least ``workers``
            CPUs — fewer cores record the ratio without gating, since
            fan-out cannot physically win there.
        steal_grain: explicit micro-batch size for the work-stealing
            scheduler (``None`` adapts per batch).
    """
    if quick:
        nrows = min(nrows, 10_000)
        block_size = min(block_size, 40)
    db = build_perf_database(nrows, seed)
    problems = build_perf_problems(db, block_size, seed)
    candidates = perf_candidate_structures()
    some_problem = next(iter(problems.values()))
    trans_configs = some_problem.configurations[:TRANS_CHECK_CONFIGS]

    legs: Dict[str, PerfLeg] = {}
    undecomposed, baseline, baseline_trans = _run_leg(
        "undecomposed", db, problems, trans_configs,
        decompose=False, n_workers=None)
    legs["undecomposed"] = undecomposed
    decomposed, decomposed_m, decomposed_trans = _run_leg(
        "decomposed", db, problems, trans_configs,
        decompose=True, n_workers=None)
    legs["decomposed"] = decomposed

    failures: List[str] = []
    for mix in problems:
        if not np.array_equal(baseline[mix], decomposed_m[mix]):
            failures.append(
                f"{mix}: decomposed EXEC matrix differs from "
                f"undecomposed")
    if not np.array_equal(baseline_trans, decomposed_trans):
        failures.append(
            "decomposed TRANS matrix differs from undecomposed")
    if decomposed.whatif_calls >= undecomposed.whatif_calls:
        failures.append(
            "decomposition saved zero what-if calls "
            f"({decomposed.whatif_calls} vs "
            f"{undecomposed.whatif_calls})")

    cpus = available_cpus()
    speedup_enforced = bool(workers and workers >= 4
                            and cpus >= workers)
    parallel_speedup = 0.0
    skew: Optional[Dict[str, object]] = None
    if workers and workers > 1:
        parallel, parallel_m, parallel_trans = _run_leg(
            "parallel", db, problems, trans_configs,
            decompose=True, n_workers=workers,
            candidates=candidates, steal_grain=steal_grain)
        legs["parallel"] = parallel
        for mix in problems:
            if not np.array_equal(decomposed_m[mix],
                                  parallel_m[mix]):
                failures.append(
                    f"{mix}: parallel EXEC matrix differs from "
                    f"serial")
        if not np.array_equal(decomposed_trans, parallel_trans):
            failures.append(
                "parallel TRANS matrix differs from serial")
        if parallel.whatif_calls != decomposed.whatif_calls:
            failures.append(
                "parallel leg issued a different call count "
                f"({parallel.whatif_calls} vs "
                f"{decomposed.whatif_calls})")
        if parallel.parallel_batches == 0:
            failures.append(
                "parallel leg never fanned out (all batches cut "
                "over to serial)")
        if parallel.steady_wall_seconds > 0:
            parallel_speedup = (decomposed.steady_wall_seconds /
                                parallel.steady_wall_seconds)
        if speedup_enforced and parallel_speedup < speedup_floor:
            failures.append(
                f"steady-state parallel speedup "
                f"{parallel_speedup:.2f}x below the "
                f"{speedup_floor}x floor at {workers} workers "
                f"({cpus} cpus)")
        skew, skew_failures = run_skew_leg(
            nrows, seed, workers, steal_grain,
            enforced=speedup_enforced)
        failures.extend(skew_failures)
    else:
        speedup_enforced = False

    exec_cells = sum(
        len(p.segments) * len(p.configurations)
        for p in problems.values())
    call_reduction = (
        undecomposed.whatif_calls / decomposed.whatif_calls
        if decomposed.whatif_calls else float("inf"))
    params = {
        "nrows": nrows, "block_size": block_size, "seed": seed,
        "workers": workers, "quick": quick,
        "mixes": list(problems),
        "n_configs": len(some_problem.configurations),
        "n_candidates": len(candidates),
        "n_trans_configs": len(trans_configs),
        "available_cpus": cpus,
        "speedup_floor": speedup_floor,
        "speedup_enforced": speedup_enforced,
        "steal_grain": steal_grain,
    }
    return PerfReport(params=params, legs=legs,
                      call_reduction=call_reduction,
                      parallel_speedup=parallel_speedup,
                      exec_cells=exec_cells, skew=skew,
                      failures=failures)

"""Costing-performance benchmark: the repo's benchmark trajectory.

``run_perf`` measures what the atomic cost decomposition and the
parallel matrix builds actually buy on the paper's Table 1 workload
mixes (W1-W3 over the Section 6.1 table), against a candidate space
rich enough to exercise signature sharing: the six paper indexes plus
two projection views, all configurations of at most two structures
(37 configurations).

Three legs build the full EXEC/TRANS matrices for every mix through
one :class:`~repro.core.costservice.CostService` session each:

* ``undecomposed`` — ``CostService(decompose=False)``: the PR-1
  baseline, one what-if estimate per (template, configuration).
* ``decomposed`` — the default service: one estimate per (template,
  relevance signature).
* ``parallel`` — decomposition plus ``n_workers`` process-pool
  fan-out.

The report records wall time, what-if calls, signature/template cache
hit rates, the call-reduction ratio, and the serial-vs-parallel
wall-time ratio — and *verifies* along the way that all three legs
produce bit-identical matrices (any mismatch, or a decomposition that
saves zero calls, is a failure that flips the CLI exit code).

``repro perf`` drives this and writes ``BENCH_PERF.json``;
``benchmarks/bench_perf.py`` wraps the same entry points under
pytest-benchmark.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.costmatrix import CostMatrices, build_cost_matrices
from ..core.costservice import CostService
from ..core.problem import ProblemInstance, enumerate_configurations
from ..core.structures import EMPTY_CONFIGURATION
from ..sqlengine.database import Database
from ..sqlengine.views import ViewDef
from ..workload.mixes import (PAPER_VALUE_RANGE, make_paper_workload,
                              paper_generator)
from ..workload.segmentation import segment_by_count
from .experiments import paper_candidate_indexes

#: Mixes measured (the Table 1 workloads).
PERF_MIXES = ("W1", "W2", "W3")


def perf_candidate_structures(table: str = "t") -> List:
    """The benchmark's candidate space: the paper's six indexes plus
    two projection views. Views share relevance signatures with the
    composite indexes on the same columns, so the space exercises
    both structure kinds in one signature."""
    return list(paper_candidate_indexes(table)) + [
        ViewDef(table, ("a", "b")), ViewDef(table, ("c", "d"))]


@dataclass
class PerfLeg:
    """One measured matrix-build session (all mixes, one service)."""

    name: str
    wall_seconds: float
    whatif_calls: int
    whatif_calls_avoided: int
    template_hits: int
    signature_hits: int
    signature_fills: int
    unique_templates: int
    unique_signatures: int
    parallel_batches: int

    def as_dict(self) -> Dict[str, object]:
        return dict(vars(self))


@dataclass
class PerfReport:
    """Everything ``BENCH_PERF.json`` carries.

    ``failures`` is non-empty iff decomposition changed a matrix
    entry or saved zero what-if calls — the conditions CI gates on.
    """

    params: Dict[str, object]
    legs: Dict[str, PerfLeg]
    call_reduction: float
    parallel_speedup: float
    exec_cells: int
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": "costing-perf",
            "params": self.params,
            "legs": {name: leg.as_dict()
                     for name, leg in self.legs.items()},
            "exec_cells": self.exec_cells,
            "call_reduction": self.call_reduction,
            "parallel_speedup": self.parallel_speedup,
            "failures": list(self.failures),
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def format(self) -> str:
        lines = ["costing performance (Table 1 mixes, "
                 f"{self.params['n_configs']} configurations, "
                 f"{self.params['nrows']} rows)"]
        for name in ("undecomposed", "decomposed", "parallel"):
            leg = self.legs.get(name)
            if leg is None:
                continue
            lines.append(
                f"  {name:<12} {leg.wall_seconds * 1e3:9.1f} ms"
                f"  what-if calls {leg.whatif_calls:5d}"
                f"  avoided {leg.whatif_calls_avoided:6d}"
                f"  signatures {leg.unique_signatures:4d}")
        lines.append(
            f"  call reduction (undecomposed/decomposed): "
            f"{self.call_reduction:.2f}x")
        if "parallel" in self.legs:
            lines.append(
                f"  parallel speedup (serial/parallel wall): "
                f"{self.parallel_speedup:.2f}x")
        if self.failures:
            lines.append("  FAILURES:")
            lines.extend(f"    - {failure}" for failure in self.failures)
        else:
            lines.append("  all legs bit-identical")
        return "\n".join(lines)


def build_perf_database(nrows: int, seed: int) -> Database:
    """The Section 6.1 table at benchmark scale."""
    db = Database()
    db.create_table("t", [("a", "INTEGER"), ("b", "INTEGER"),
                          ("c", "INTEGER"), ("d", "INTEGER")])
    rng = np.random.default_rng(seed)
    lo, hi = PAPER_VALUE_RANGE
    db.bulk_load("t", {column: rng.integers(lo, hi, nrows)
                       for column in ("a", "b", "c", "d")})
    return db


def build_perf_problems(db: Database, block_size: int, seed: int
                        ) -> Dict[str, ProblemInstance]:
    """One problem instance per Table 1 mix over the enriched
    candidate space (indexes + views, at most two structures)."""
    configurations = tuple(enumerate_configurations(
        perf_candidate_structures(), max_indexes=2))
    problems: Dict[str, ProblemInstance] = {}
    for i, name in enumerate(PERF_MIXES):
        generator = paper_generator(seed=seed + i + 1)
        workload = make_paper_workload(name, generator,
                                       block_size=block_size)
        segments = tuple(segment_by_count(workload, block_size))
        problems[name] = ProblemInstance(
            segments=segments, configurations=configurations,
            initial=EMPTY_CONFIGURATION, final=EMPTY_CONFIGURATION)
    return problems


def _run_leg(name: str, db: Database,
             problems: Dict[str, ProblemInstance],
             decompose: bool, n_workers: Optional[int]
             ) -> Tuple[PerfLeg, Dict[str, CostMatrices]]:
    service = CostService(db.what_if(), decompose=decompose,
                          n_workers=n_workers)
    matrices: Dict[str, CostMatrices] = {}
    start = time.perf_counter()
    for mix, problem in problems.items():
        matrices[mix] = build_cost_matrices(problem, service)
    wall = time.perf_counter() - start
    stats = service.stats
    leg = PerfLeg(
        name=name, wall_seconds=wall,
        whatif_calls=stats.whatif_calls,
        whatif_calls_avoided=stats.whatif_calls_avoided,
        template_hits=stats.template_hits,
        signature_hits=stats.signature_hits,
        signature_fills=stats.signature_fills,
        unique_templates=stats.unique_templates,
        unique_signatures=stats.unique_signatures,
        parallel_batches=stats.parallel_batches)
    return leg, matrices


def run_perf(nrows: int = 100_000, block_size: int = 100,
             seed: int = 0, workers: int = 2,
             quick: bool = False) -> PerfReport:
    """Measure the three costing legs and cross-check bit-identity.

    Args:
        nrows / block_size / seed: scale parameters (same meaning as
            the other benches).
        workers: process-pool width for the parallel leg; ``0`` skips
            the leg entirely.
        quick: CI scale — shrinks the table and blocks so the whole
            run stays in a few seconds.
    """
    if quick:
        nrows = min(nrows, 10_000)
        block_size = min(block_size, 40)
    db = build_perf_database(nrows, seed)
    problems = build_perf_problems(db, block_size, seed)

    legs: Dict[str, PerfLeg] = {}
    undecomposed, baseline = _run_leg(
        "undecomposed", db, problems, decompose=False, n_workers=None)
    legs["undecomposed"] = undecomposed
    decomposed, decomposed_m = _run_leg(
        "decomposed", db, problems, decompose=True, n_workers=None)
    legs["decomposed"] = decomposed

    failures: List[str] = []
    for mix in problems:
        if not np.array_equal(baseline[mix].exec_matrix,
                              decomposed_m[mix].exec_matrix):
            failures.append(
                f"{mix}: decomposed EXEC matrix differs from "
                f"undecomposed")
        if not np.array_equal(baseline[mix].trans_matrix,
                              decomposed_m[mix].trans_matrix):
            failures.append(
                f"{mix}: decomposed TRANS matrix differs from "
                f"undecomposed")
    if decomposed.whatif_calls >= undecomposed.whatif_calls:
        failures.append(
            "decomposition saved zero what-if calls "
            f"({decomposed.whatif_calls} vs "
            f"{undecomposed.whatif_calls})")

    parallel_speedup = 0.0
    if workers and workers > 1:
        parallel, parallel_m = _run_leg(
            "parallel", db, problems, decompose=True,
            n_workers=workers)
        legs["parallel"] = parallel
        for mix in problems:
            if not np.array_equal(decomposed_m[mix].exec_matrix,
                                  parallel_m[mix].exec_matrix):
                failures.append(
                    f"{mix}: parallel EXEC matrix differs from "
                    f"serial")
        if parallel.whatif_calls != decomposed.whatif_calls:
            failures.append(
                "parallel leg issued a different call count "
                f"({parallel.whatif_calls} vs "
                f"{decomposed.whatif_calls})")
        if parallel.wall_seconds > 0:
            parallel_speedup = \
                decomposed.wall_seconds / parallel.wall_seconds

    some_problem = next(iter(problems.values()))
    exec_cells = sum(
        len(p.segments) * len(p.configurations)
        for p in problems.values())
    call_reduction = (
        undecomposed.whatif_calls / decomposed.whatif_calls
        if decomposed.whatif_calls else float("inf"))
    params = {
        "nrows": nrows, "block_size": block_size, "seed": seed,
        "workers": workers, "quick": quick,
        "mixes": list(problems),
        "n_configs": len(some_problem.configurations),
        "n_candidates": len(perf_candidate_structures()),
    }
    return PerfReport(params=params, legs=legs,
                      call_reduction=call_reduction,
                      parallel_speedup=parallel_speedup,
                      exec_cells=exec_cells, failures=failures)

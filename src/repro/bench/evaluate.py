"""Deploying designs and replaying workloads against the live engine.

This is the measurement side of the reproduction: given a dynamic
design, actually *apply* it — materialize and drop indexes at each
change point — while executing every statement, metering both the
execution cost and the transition cost in the engine's deterministic
cost units. Figure 3's relative execution times come from these
replays.

A cost-model-only fast path (:func:`estimate_replay`) prices a design
without touching the data; the tests cross-check that estimates and
metered replays rank designs the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..core.costmatrix import CostProvider
from ..core.design import DesignSequence
from ..errors import DesignError
from ..sqlengine.database import Database
from ..workload.segmentation import Segment


@dataclass
class SegmentReplay:
    """Metered outcome of one segment under one configuration."""

    segment_index: int
    config_label: str
    exec_units: float
    trans_units: float
    n_statements: int


@dataclass
class ReplayReport:
    """Metered outcome of a full design deployment + workload replay.

    Attributes:
        segments: per-segment breakdown.
        exec_units: total execution cost units.
        trans_units: total design-transition cost units (including the
            final transition when the design pins a final config).
        design_changes: number of configuration changes applied.
    """

    segments: List[SegmentReplay] = field(default_factory=list)
    exec_units: float = 0.0
    trans_units: float = 0.0
    design_changes: int = 0

    @property
    def total_units(self) -> float:
        return self.exec_units + self.trans_units

    def relative_to(self, baseline: "ReplayReport") -> float:
        """This replay's total as a fraction of the baseline's."""
        if baseline.total_units == 0:
            raise DesignError("baseline replay has zero cost")
        return self.total_units / baseline.total_units


def replay_design(db: Database, segments: Sequence[Segment],
                  design: DesignSequence,
                  reset_to_initial: bool = True,
                  final_config=None) -> ReplayReport:
    """Deploy ``design`` over ``segments`` on the live database.

    Walks the segments in order; whenever the design changes, applies
    the new configuration (real index builds/drops, metered), then
    executes every statement of the segment and accumulates its cost.

    Args:
        db: the database (its current indexes are replaced).
        segments: workload units; must match the design's length.
        design: one configuration per segment.
        reset_to_initial: first restore the design's initial
            configuration (metered separately, not charged).
        final_config: if given, transition to this configuration after
            the last segment (charged as transition cost — the paper's
            pinned empty final design).
    """
    if len(segments) != len(design):
        raise DesignError(
            f"{len(segments)} segments but design has {len(design)}")
    if reset_to_initial:
        db.apply_configuration({d for d in design.initial})
    report = ReplayReport()
    current = design.initial
    for i, segment in enumerate(segments):
        trans_units = 0.0
        config = design[i]
        if config != current:
            transition = db.apply_configuration(set(config))
            trans_units = transition.units(db.params)
            report.design_changes += 1
            current = config
        exec_units = 0.0
        for statement in segment:
            result = db.execute(statement.ast)
            exec_units += result.units(db.params)
        report.segments.append(SegmentReplay(
            segment_index=i, config_label=config.label,
            exec_units=exec_units, trans_units=trans_units,
            n_statements=len(segment)))
        report.exec_units += exec_units
        report.trans_units += trans_units
    if final_config is not None and final_config != current:
        transition = db.apply_configuration(set(final_config))
        report.trans_units += transition.units(db.params)
        report.design_changes += 1
    return report


def estimate_replay(provider: CostProvider, segments: Sequence[Segment],
                    design: DesignSequence,
                    final_config=None) -> ReplayReport:
    """Price a design with the cost model only (no execution)."""
    if len(segments) != len(design):
        raise DesignError(
            f"{len(segments)} segments but design has {len(design)}")
    report = ReplayReport()
    current = design.initial
    for i, segment in enumerate(segments):
        trans_units = 0.0
        config = design[i]
        if config != current:
            trans_units = provider.trans_cost(current, config)
            report.design_changes += 1
            current = config
        exec_units = provider.exec_cost(segment, config)
        report.segments.append(SegmentReplay(
            segment_index=i, config_label=config.label,
            exec_units=exec_units, trans_units=trans_units,
            n_statements=len(segment)))
        report.exec_units += exec_units
        report.trans_units += trans_units
    if final_config is not None and final_config != current:
        report.trans_units += provider.trans_cost(current, final_config)
        report.design_changes += 1
    return report

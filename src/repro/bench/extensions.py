"""Extension experiments: the paper's open questions, measured.

These go beyond Section 6: automatic k selection (open question 1),
robustness characterization (open question 2), and a head-to-head with
an online tuner (the related-work alternative of Sections 1/7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.advisor import (ConstrainedGraphAdvisor,
                            UnconstrainedAdvisor)
from ..core.costmatrix import build_cost_matrices
from ..core.ktuning import (KSweepResult, ValidatedKResult, knee_k,
                            sweep_k, validated_k)
from ..core.online import OnlineTuner
from ..core.robustness import RobustnessReport, compare_robustness
from ..workload.perturb import jitter_blocks, resample_values
from .experiments import COUNT_INITIAL_CHANGE, PaperSetup
from .reporting import format_series, format_table


# ----------------------------------------------------------------------
# Extension 1 — choosing k
# ----------------------------------------------------------------------

@dataclass
class KTuningResult:
    """Automatic k selection on W1."""

    sweep: KSweepResult
    knee: int
    validated: ValidatedKResult

    def format(self) -> str:
        series = {"optimal cost": [f"{c:.0f}"
                                   for c in self.sweep.costs]}
        curve = format_series("k", list(self.sweep.ks), series,
                              title="Extension 1: cost curve on W1")
        lines = [curve, "",
                 f"knee of the curve:      k = {self.knee}",
                 f"validated against "
                 f"{len(self.validated.ks)} budgets on jittered "
                 f"variants: k = {self.validated.best_k}"]
        return "\n".join(lines)


def run_extension_ktuning(setup: PaperSetup,
                          n_variants: int = 4) -> KTuningResult:
    """Sweep k on W1, find the knee, and validate against jittered
    variants of the trace."""
    problem = setup.problem_for("W1")
    matrices = build_cost_matrices(problem, setup.provider)
    sweep = sweep_k(matrices, count_initial_change=
                    COUNT_INITIAL_CHANGE)
    knee = knee_k(sweep)
    trace = setup.workloads["W1"]
    variations = [jitter_blocks(trace, setup.block_size,
                                seed=1000 + i, max_displacement=3,
                                swap_fraction=0.9)
                  for i in range(n_variants)]
    candidate_ks = sorted({0, 1, 2, 4,
                           max(2, sweep.unconstrained_changes // 2),
                           sweep.unconstrained_changes})
    validated = validated_k(problem, setup.provider, variations,
                            setup.block_size, ks=candidate_ks,
                            count_initial_change=COUNT_INITIAL_CHANGE)
    return KTuningResult(sweep=sweep, knee=knee, validated=validated)


# ----------------------------------------------------------------------
# Extension 2 — robustness characterization
# ----------------------------------------------------------------------

@dataclass
class RobustnessResult:
    """Constrained vs unconstrained robustness across two variation
    families (value resampling vs minor-shift jitter)."""

    by_family: Dict[str, Dict[str, RobustnessReport]]

    def format(self) -> str:
        rows = []
        for family, reports in self.by_family.items():
            for label, report in reports.items():
                rows.append([family, label,
                             f"{report.mean_regret:.1%}",
                             f"{report.worst_regret:.1%}"])
        return format_table(
            ["variation family", "design", "mean regret",
             "worst regret"], rows,
            title="Extension 2: design robustness across variation "
                  "families")


def run_extension_robustness(setup: PaperSetup,
                             n_variants: int = 3) -> RobustnessResult:
    """Compare the W1 designs' regret over two variation families."""
    problem = setup.problem_for("W1")
    matrices = build_cost_matrices(problem, setup.provider)
    unconstrained = UnconstrainedAdvisor().recommend(
        problem, setup.provider, matrices)
    constrained = ConstrainedGraphAdvisor(
        2, count_initial_change=COUNT_INITIAL_CHANGE).recommend(
        problem, setup.provider, matrices)
    designs = {"unconstrained": unconstrained.design,
               "constrained k=2": constrained.design}
    trace = setup.workloads["W1"]
    families = {
        "fresh constants": [
            resample_values(trace, seed=2000 + i)
            for i in range(n_variants)],
        "jittered minors": [
            jitter_blocks(trace, setup.block_size, seed=3000 + i,
                          max_displacement=3, swap_fraction=0.9)
            for i in range(n_variants)],
    }
    by_family = {
        family: compare_robustness(designs, problem, setup.provider,
                                   variants, setup.block_size)
        for family, variants in families.items()}
    return RobustnessResult(by_family=by_family)


# ----------------------------------------------------------------------
# Extension 3 — offline (with a trace) vs online (reactive)
# ----------------------------------------------------------------------

@dataclass
class OnlineComparisonResult:
    """Costs of online vs offline designs on the W1 trace and a
    jittered repeat of it."""

    rows: List[Tuple[str, float, int]]  # (label, cost, changes)
    online_decisions: int

    def format(self) -> str:
        rows = [[label, f"{cost:.0f}", changes]
                for label, cost, changes in self.rows]
        return format_table(
            ["technique", "cost on trace", "design changes"], rows,
            title="Extension 3: offline (trace in advance) vs online "
                  "(reactive) tuning on W1")

    def cost_of(self, label: str) -> float:
        for row_label, cost, _ in self.rows:
            if row_label == label:
                return cost
        raise KeyError(label)


def run_extension_online(setup: PaperSetup,
                         decay: float = 0.95,
                         build_factor: float = 2.0,
                         cooldown: Optional[int] = None
                         ) -> OnlineComparisonResult:
    """Run the online tuner over W1 and compare with the offline
    advisors on total (EXEC + TRANS) cost."""
    problem = setup.problem_for("W1")
    matrices = build_cost_matrices(problem, setup.provider)
    unconstrained = UnconstrainedAdvisor().recommend(
        problem, setup.provider, matrices)
    constrained = ConstrainedGraphAdvisor(
        2, count_initial_change=COUNT_INITIAL_CHANGE).recommend(
        problem, setup.provider, matrices)
    if cooldown is None:
        cooldown = setup.block_size // 2
    tuner = OnlineTuner(setup.candidates, setup.provider, decay=decay,
                        build_factor=build_factor, cooldown=cooldown)
    online = tuner.run(list(setup.workloads["W1"]))
    rows = [
        ("offline unconstrained", unconstrained.cost,
         unconstrained.change_count),
        ("offline constrained k=2", constrained.cost,
         constrained.change_count),
        ("online tuner", online.total_cost, online.change_count),
    ]
    return OnlineComparisonResult(rows=rows,
                                  online_decisions=len(
                                      online.decisions))

"""The five differential / invariant check families.

1. **Solver equivalence** (:func:`check_solver_equivalence`) — the
   vectorized DP, the pure-Python reference DP, and the explicit
   :class:`~repro.core.sequence_graph.SequenceGraph` shortest path
   must produce the same objective *exactly* (0 ulp). This is not a
   tolerance shortcut: all three paths accumulate each design's cost
   as the same left-fold ``((dist + trans) + exec)`` per stage, the
   canonical :meth:`~repro.core.costmatrix.CostMatrices.sequence_cost`
   order, and their tie-breaking rules coincide (first-lowest index),
   so any difference at all is a bug.

2. **Constrained invariants** (:func:`check_constrained_invariants`) —
   ``cost(k)`` is non-increasing in k, ``cost(k >= l)`` equals the
   unconstrained optimum exactly, change counts never exceed k, the
   per-solution invariant hook
   (:func:`~repro.core.kaware.constrained_invariant_violations`) is
   clean, and ``SIZE(C_i) <= b`` at every stage.

3. **Cost service** (:func:`check_cost_service`) — the batched
   :class:`~repro.core.costservice.CostService` matrices are
   bit-identical to the serial
   :class:`~repro.core.costmatrix.WhatIfCostProvider` loop and to the
   service's own scalar path (warm and cold), and a stats-epoch bump
   actually invalidates the caches without changing values.

4. **Ground truth** (:func:`check_ground_truth`) — what-if estimates
   stay within a per-access-path relative-error budget of the cost
   actually metered by executing the statement against the live
   engine, and the buffer manager's I/O counters are self-consistent.

5. **Plan identity** (:func:`check_plan_identity`) — for every SELECT
   x configuration in the trace, the physical-plan tree the what-if
   optimizer costs must compare equal (dataclass equality, node by
   node) to the tree the executor picks with the configuration
   actually deployed, with bit-identical estimated costs. This is the
   plan-IR contract: hypothetical structures are catalog substitution,
   not a second costing path.

7. **Scale advisor** (:func:`check_summary_formulation` on live
   traces, :func:`check_lp_bounds` on synthetic matrices) — the
   compressed workload-summary formulation must fill EXEC/TRANS
   matrices bit-identical to the raw segmented problem (the weighted
   atom fold is the *same* fold, not an approximation), and the
   LP-relaxation solver's output must be feasible (budget, space
   bound, endpoints — the same invariant hook as family 2) with its
   certified interval ``[lower_bound, cost]`` actually containing the
   exact DP optimum. (Family 6, fault resilience, lives in
   :mod:`repro.faults.chaos`.)

8. **Deployment** (:func:`check_deployment`) — the compression axis
   and the transition scheduler: explicit level-NONE structures are
   bitwise the uncompressed ones (definition, geometry, estimates),
   relevance signatures never conflate compression levels whose
   estimates differ (the L3 cache-safety contract), scheduled
   deployments perform exactly the symmetric difference inside any
   space bound and never cost more than the unscheduled order, and
   executing a plan lands the live catalog exactly on the target
   (resumably — re-execution is a no-op).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.costmatrix import (CostMatrices, WhatIfCostProvider,
                               build_cost_matrices)
from ..core.costservice import CostService
from ..core.kaware import (constrained_invariant_violations,
                           solve_constrained,
                           solve_constrained_reference)
from ..core.lp_advisor import solve_lp_rounding
from ..core.problem import summarize_problem
from ..core.sequence_graph import (SequenceGraph, solve_unconstrained,
                                   solve_unconstrained_reference)
from ..errors import InfeasibleProblemError
from ..sqlengine.sql.ast import SelectStmt
from .generators import MatrixInstance, TraceInstance
from .report import CheckResult

#: Relative-error budgets for estimate-vs-executed cost units, per
#: access-path kind. The what-if optimizer and the executor share one
#: cost model but diverge on estimated vs actual selectivity, so the
#: scan paths (whose cost is pure geometry) are tight while the seek
#: paths (whose cost rides on per-value row counts) get slack.
DEFAULT_GROUND_TRUTH_BUDGETS: Dict[str, float] = {
    "full_scan": 0.01,
    "index_only_scan": 0.05,
    "index_seek": 0.10,
    "view_scan": 0.05,
    "other": 0.50,
}


def _max_useful_k(matrices: CostMatrices,
                  count_initial_change: bool) -> int:
    unconstrained = solve_unconstrained(matrices)
    if count_initial_change:
        return unconstrained.change_count
    changes = sum(1 for a, b in zip(unconstrained.assignment,
                                    unconstrained.assignment[1:])
                  if a != b)
    return changes


# ----------------------------------------------------------------------
# family 1: solver equivalence
# ----------------------------------------------------------------------

def check_solver_equivalence(instance: MatrixInstance,
                             result: CheckResult) -> None:
    """Cross-check the three unconstrained solver paths and the two
    constrained solver paths on one instance, exactly."""
    matrices = instance.matrices
    label = instance.label

    vec = solve_unconstrained(matrices)
    ref = solve_unconstrained_reference(matrices)
    graph = SequenceGraph(matrices).shortest_path()
    result.check(
        vec.cost == ref.cost, label,
        f"unconstrained cost: vectorized {vec.cost!r} != "
        f"reference {ref.cost!r}")
    result.check(
        vec.assignment == ref.assignment, label,
        f"unconstrained assignment: vectorized {vec.assignment} != "
        f"reference {ref.assignment}")
    result.check(
        matrices.sequence_cost(vec.assignment) == vec.cost, label,
        f"vectorized cost {vec.cost!r} != canonical sequence cost "
        f"{matrices.sequence_cost(vec.assignment)!r}")
    result.check(
        graph.cost == vec.cost, label,
        f"graph shortest-path cost {graph.cost!r} != "
        f"vectorized {vec.cost!r}")
    result.check(
        graph.change_count == matrices.change_count(graph.assignment),
        label,
        f"graph change count {graph.change_count} != recomputed "
        f"{matrices.change_count(graph.assignment)}")

    for count_initial in (True, False):
        mode = f"count_initial={count_initial}"
        max_k = _max_useful_k(matrices, count_initial)
        for k in range(0, max_k + 2):
            where = f"{label} k={k} {mode}"
            vec_exc = ref_exc = None
            try:
                vec_k = solve_constrained(matrices, k, count_initial)
            except InfeasibleProblemError as exc:
                vec_exc = exc
            try:
                ref_k = solve_constrained_reference(matrices, k,
                                                    count_initial)
            except InfeasibleProblemError as exc:
                ref_exc = exc
            if not result.check(
                    (vec_exc is None) == (ref_exc is None), where,
                    f"feasibility disagreement: vectorized raised "
                    f"{vec_exc!r}, reference raised {ref_exc!r}"):
                continue
            if vec_exc is not None:
                continue
            result.check(
                vec_k.cost == ref_k.cost, where,
                f"constrained cost: vectorized {vec_k.cost!r} != "
                f"reference {ref_k.cost!r}")
            result.check(
                vec_k.assignment == ref_k.assignment, where,
                f"constrained assignment: vectorized "
                f"{vec_k.assignment} != reference {ref_k.assignment}")
            result.check(
                vec_k.change_count == ref_k.change_count, where,
                f"constrained change count: vectorized "
                f"{vec_k.change_count} != reference "
                f"{ref_k.change_count}")


# ----------------------------------------------------------------------
# family 2: constrained-solver invariants
# ----------------------------------------------------------------------

def check_constrained_invariants(instance: MatrixInstance,
                                 result: CheckResult) -> None:
    """Invariants of the k sweep on one instance (see module
    docstring, family 2)."""
    matrices = instance.matrices
    unconstrained = solve_unconstrained(matrices)
    for count_initial in (True, False):
        mode = f"count_initial={count_initial}"
        max_k = _max_useful_k(matrices, count_initial)
        previous_cost: Optional[float] = None
        for k in range(0, max_k + 2):
            where = f"{instance.label} k={k} {mode}"
            solved = solve_constrained(matrices, k, count_initial)
            violations = constrained_invariant_violations(
                matrices, solved, k,
                count_initial_change=count_initial,
                size_fn=instance.size_of,
                space_bound_bytes=instance.space_bound_bytes)
            if violations:
                result.failed(where, "; ".join(violations))
            else:
                result.passed()
            result.check(
                previous_cost is None or solved.cost <= previous_cost,
                where,
                f"cost(k) increased: cost({k}) = {solved.cost!r} > "
                f"cost({k - 1}) = {previous_cost!r}")
            previous_cost = solved.cost
            if k >= max_k:
                result.check(
                    solved.cost == unconstrained.cost, where,
                    f"cost at k={k} >= l={max_k} is {solved.cost!r}, "
                    f"unconstrained optimum is "
                    f"{unconstrained.cost!r}")


def solver_agreement_failures(matrices: CostMatrices, k: int,
                              count_initial_change: bool,
                              label: str = "experiment"
                              ) -> List[str]:
    """The experiments' end-of-run verify pass, on real matrices.

    Runs the solver-equivalence family (plus the invariant hook at the
    experiment's k) on one :class:`CostMatrices` and returns formatted
    failure strings. Called by the ``run_*`` experiment functions; a
    non-empty return means the figures upstream cannot be trusted.
    """
    result = CheckResult("experiment-verify",
                         "post-experiment solver agreement")
    vec = solve_unconstrained(matrices)
    ref = solve_unconstrained_reference(matrices)
    graph = SequenceGraph(matrices).shortest_path()
    result.check(vec.cost == ref.cost, label,
                 f"unconstrained: vectorized {vec.cost!r} != "
                 f"reference {ref.cost!r}")
    result.check(graph.cost == vec.cost, label,
                 f"unconstrained: graph {graph.cost!r} != "
                 f"vectorized {vec.cost!r}")
    solved = solve_constrained(matrices, k, count_initial_change)
    reference = solve_constrained_reference(matrices, k,
                                            count_initial_change)
    result.check(solved.cost == reference.cost, label,
                 f"k={k}: vectorized {solved.cost!r} != "
                 f"reference {reference.cost!r}")
    violations = constrained_invariant_violations(
        matrices, solved, k,
        count_initial_change=count_initial_change)
    for violation in violations:
        result.failed(label, violation)
    return [failure.format() for failure in result.failures]


# ----------------------------------------------------------------------
# family 3: cost-service bit-identity and invalidation
# ----------------------------------------------------------------------

def check_cost_service(instance: TraceInstance,
                       result: CheckResult) -> None:
    """Batch vs scalar bit-identity and epoch invalidation (family 3)."""
    problem = instance.problem
    service = instance.service
    optimizer = service.optimizer
    label = instance.label
    segments = problem.segments
    configs = problem.configurations

    batch_exec = service.exec_matrix(segments, configs)
    batch_trans = service.trans_matrix(configs)

    serial = build_cost_matrices(problem, WhatIfCostProvider(optimizer))
    result.check(
        np.array_equal(batch_exec, serial.exec_matrix), label,
        "batched EXEC matrix differs from the serial "
        "WhatIfCostProvider loop (max abs diff "
        f"{np.max(np.abs(batch_exec - serial.exec_matrix))!r})")
    result.check(
        np.array_equal(batch_trans, serial.trans_matrix), label,
        "batched TRANS matrix differs from the serial loop (max abs "
        f"diff {np.max(np.abs(batch_trans - serial.trans_matrix))!r})")

    # The service's own scalar path — warm (L1 hits from the batch)
    # and cold (a fresh service routing through templates) — must
    # reproduce every matrix entry bitwise.
    cold = CostService(optimizer)
    for i, segment in enumerate(segments):
        for j, config in enumerate(configs):
            warm_units = service.exec_cost(segment, config)
            result.check(
                warm_units == batch_exec[i, j],
                f"{label} segment={i} config={config.label}",
                f"warm scalar exec_cost {warm_units!r} != batch "
                f"matrix entry {batch_exec[i, j]!r}")
            cold_units = cold.exec_cost(segment, config)
            result.check(
                cold_units == batch_exec[i, j],
                f"{label} segment={i} config={config.label}",
                f"cold scalar exec_cost {cold_units!r} != batch "
                f"matrix entry {batch_exec[i, j]!r}")
    for i, old in enumerate(configs):
        for j, new in enumerate(configs):
            units = service.trans_cost(old, new)
            result.check(
                units == batch_trans[i, j],
                f"{label} {old.label}->{new.label}",
                f"scalar trans_cost {units!r} != batch matrix entry "
                f"{batch_trans[i, j]!r}")

    # Atomic cost decomposition: the default (signature-keyed)
    # service must reproduce the undecomposed path bit for bit while
    # issuing strictly fewer what-if calls, and the process-pool
    # parallel build must change nothing but the wall time.
    undecomposed = CostService(optimizer, decompose=False)
    undec_exec = undecomposed.exec_matrix(segments, configs)
    result.check(
        np.array_equal(undec_exec, batch_exec), label,
        "decomposed EXEC matrix differs from the undecomposed "
        "(decompose=False) path (max abs diff "
        f"{np.max(np.abs(undec_exec - batch_exec))!r})")
    decomposed = CostService(optimizer)
    decomposed.exec_matrix(segments, configs)
    result.check(
        decomposed.stats.whatif_calls <
        undecomposed.stats.whatif_calls, label,
        "relevance-signature decomposition saved zero what-if calls "
        f"({decomposed.stats.whatif_calls} vs "
        f"{undecomposed.stats.whatif_calls} undecomposed)")
    # parallel_threshold=2 defeats the adaptive serial cutover so the
    # small verify instances genuinely exercise the process pool and
    # its integer-id worker protocol.
    parallel = CostService(optimizer, n_workers=2,
                           parallel_threshold=2)
    parallel_exec = parallel.exec_matrix(segments, configs)
    result.check(
        np.array_equal(parallel_exec, batch_exec), label,
        "parallel (n_workers=2) EXEC matrix differs from the serial "
        "build (max abs diff "
        f"{np.max(np.abs(parallel_exec - batch_exec))!r})")
    result.check(
        parallel.stats.parallel_batches >= 1, label,
        "parallel service resolved every batch serially (cutover "
        "fired despite parallel_threshold=2)")

    # Zero-copy shared statistics: the default parallel service
    # publishes the catalog's histograms into a shared-memory block
    # (where the platform supports it) whose lifetime tracks the
    # pool's; a pickled-fallback service (shared_stats=False) must
    # produce the same bits through replicas that deserialized their
    # own statistics.
    from ..sqlengine.shm_stats import shared_memory_available
    if shared_memory_available():
        result.check(
            parallel._shm_block is not None, label,
            "parallel service published no shared-memory stats "
            "block despite shared memory being available")
    with CostService(optimizer, n_workers=2, parallel_threshold=2,
                     shared_stats=False) as pickled:
        pickled_exec = pickled.exec_matrix(segments, configs)
        result.check(
            pickled._shm_block is None, label,
            "shared_stats=False service still published a "
            "shared-memory block")
        result.check(
            np.array_equal(pickled_exec, batch_exec), label,
            "pickled-snapshot (shared_stats=False) EXEC matrix "
            "differs from the serial build (max abs diff "
            f"{np.max(np.abs(pickled_exec - batch_exec))!r})")

    # Scheduler bit-identity: the static one-LPT-chunk-per-worker
    # layout and an extreme work-stealing grain (one item per
    # micro-batch — maximal chunking, arbitrary completion order)
    # must both reproduce the serial bits through the streaming
    # index-keyed merge.
    with CostService(optimizer, n_workers=2, parallel_threshold=2,
                     scheduler="static") as static:
        static_exec = static.exec_matrix(segments, configs)
        result.check(
            np.array_equal(static_exec, batch_exec), label,
            "static-scheduler EXEC matrix differs from the serial "
            "build (max abs diff "
            f"{np.max(np.abs(static_exec - batch_exec))!r})")
    with CostService(optimizer, n_workers=2, parallel_threshold=2,
                     steal_grain=1) as fine:
        fine_exec = fine.exec_matrix(segments, configs)
        result.check(
            np.array_equal(fine_exec, batch_exec), label,
            "steal_grain=1 EXEC matrix differs from the serial "
            "build (max abs diff "
            f"{np.max(np.abs(fine_exec - batch_exec))!r})")
        metrics = fine.last_parallel_metrics
        result.check(
            metrics is not None and
            metrics.n_chunks == metrics.n_items, label,
            "steal_grain=1 did not submit one micro-batch per "
            "pending item")

    # Epoch invalidation: bumping the optimizer's stats epoch must
    # drop the caches (new what-if calls are issued) without changing
    # values when the stats themselves are unchanged.
    calls_before = service.stats.whatif_calls
    optimizer.refresh_stats(
        {name: instance.db.stats(name) for name in instance.db.tables})
    service.exec_cost(segments[0], configs[0])
    result.check(
        service.stats.whatif_calls > calls_before, label,
        "stats-epoch bump did not invalidate the cost-service caches "
        "(no new what-if calls after refresh_stats)")
    rebuilt = service.exec_matrix(segments, configs)
    result.check(
        np.array_equal(rebuilt, batch_exec), label,
        "EXEC matrix rebuilt after an identical-stats epoch bump "
        "differs from the original")

    # Pool lifecycle across invalidation: the parallel service saw
    # the same epoch bump, so its next batch must tear down the old
    # pool, rebuild worker replicas (and registries) from the fresh
    # snapshot, and still match the serial rebuild bit for bit.
    stale_pool = parallel._pool
    parallel_rebuilt = parallel.exec_matrix(segments, configs)
    result.check(
        parallel._pool is not stale_pool, label,
        "parallel service reused its stale-replica worker pool "
        "across a stats-epoch bump")
    result.check(
        np.array_equal(parallel_rebuilt, rebuilt), label,
        "parallel EXEC matrix rebuilt after the epoch bump differs "
        "from the serial rebuild (stale worker snapshot?)")
    parallel.close()


# ----------------------------------------------------------------------
# family 4: cost model vs executed ground truth
# ----------------------------------------------------------------------

def check_ground_truth(
        instance: TraceInstance, result: CheckResult,
        budgets: Optional[Dict[str, float]] = None,
        statements_per_segment: int = 3,
        configs_to_deploy: Optional[Sequence] = None) -> None:
    """Estimates vs live execution, per access path (family 4).

    Deploys a few candidate configurations for real, executes a sample
    of the trace under each, and holds the what-if estimate for every
    executed statement to a per-access-path relative-error budget
    against the metered cost units. Also asserts the buffer manager's
    :class:`~repro.sqlengine.buffer.IoMetrics` deltas are
    self-consistent. Leaves the database in the empty design.
    """
    db = instance.db
    budgets = dict(DEFAULT_GROUND_TRUTH_BUDGETS, **(budgets or {}))
    if configs_to_deploy is None:
        # Empty design plus the first two single-index candidates:
        # covers full scans, seeks, and index-only scans.
        configs_to_deploy = instance.problem.configurations[:3]
    sample = []
    for segment in instance.problem.segments:
        sample.extend(list(segment)[:statements_per_segment])
    for config in configs_to_deploy:
        db.apply_configuration(set(config))
        optimizer = db.what_if()
        for statement in sample:
            estimate = optimizer.estimate_statement(
                statement.ast, config.structures).units
            ground = db.execute_metered(statement.ast)
            actual = ground.units(db.params)
            kind = ground.access_kind
            budget = budgets.get(kind, budgets["other"])
            where = (f"{instance.label} config={config.label} "
                     f"kind={kind} sql={statement.sql!r}")
            error = abs(estimate - actual) / max(abs(actual), 1.0)
            result.check(
                error <= budget, where,
                f"estimate {estimate:.3f} vs executed {actual:.3f} "
                f"units: relative error {error:.3f} exceeds the "
                f"{kind} budget {budget}")
            io = ground.io
            result.check(
                0 <= io.physical_reads <= io.logical_reads, where,
                f"inconsistent IoMetrics: physical={io.physical_reads}"
                f" logical={io.logical_reads}")
            result.check(
                io.physical_writes >= 0, where,
                f"negative physical_writes {io.physical_writes}")
    db.apply_configuration(set())


# ----------------------------------------------------------------------
# family 5: what-if plan == executor plan
# ----------------------------------------------------------------------

def check_plan_identity(instance: TraceInstance,
                        result: CheckResult) -> None:
    """What-if and executor plan trees must be identical (family 5).

    For every candidate configuration, deploys it for real and asserts
    — per unique SELECT in the trace — that the plan object the
    what-if optimizer costed is structurally equal to the plan object
    the executor chooses against the materialized catalog, with the
    same estimated cost, bit for bit. Also executes one statement per
    configuration and asserts the plan recorded on the result is that
    same tree. Leaves the database in the empty design.
    """
    db = instance.db
    selects = []
    seen_sql = set()
    for segment in instance.problem.segments:
        for statement in segment:
            if isinstance(statement.ast, SelectStmt) and \
                    statement.sql not in seen_sql:
                seen_sql.add(statement.sql)
                selects.append(statement)
    for config in instance.problem.configurations:
        db.apply_configuration(set(config))
        optimizer = db.what_if()
        for statement in selects:
            where = (f"{instance.label} config={config.label} "
                     f"sql={statement.sql!r}")
            estimate = optimizer.estimate_statement(
                statement.ast, config.structures)
            executed_path = db.plan(statement.ast)
            if not result.check(
                    estimate.plan is not None and
                    executed_path.plan is not None, where,
                    "missing plan tree on what-if estimate or "
                    "executor access path"):
                continue
            result.check(
                estimate.plan == executed_path.plan, where,
                f"what-if plan != executor plan:\n"
                f"what-if:\n{estimate.plan.explain()}\n"
                f"executor:\n{executed_path.plan.explain()}")
            result.check(
                estimate.cost == executed_path.cost, where,
                f"plan cost drift: what-if {estimate.cost!r} != "
                f"executor {executed_path.cost!r}")
        if selects:
            # One real execution: the plan recorded on the result is
            # the same object family the what-if optimizer costed.
            probe = selects[0]
            estimate = optimizer.estimate_statement(
                probe.ast, config.structures)
            ground = db.execute_metered(probe.ast)
            path = ground.result.access_path
            if path is not None:
                result.check(
                    path.plan == estimate.plan,
                    f"{instance.label} config={config.label} "
                    f"sql={probe.sql!r}",
                    "executed plan differs from the what-if plan")
    db.apply_configuration(set())


# ----------------------------------------------------------------------
# family 7: summary formulation + LP solver (scale advisor)
# ----------------------------------------------------------------------

def check_summary_formulation(instance: TraceInstance,
                              result: CheckResult) -> None:
    """Summary-vs-raw bit-identity on a live trace (family 7).

    Summarizing the segmented problem and rebuilding its cost
    matrices through a fresh service must reproduce the raw problem's
    matrices bit for bit — the atom fold is the canonical weighted
    accumulation, not an approximation — and the exact DP through
    both formulations must therefore recommend identical designs.
    """
    problem = instance.problem
    optimizer = instance.service.optimizer
    label = instance.label
    summary_problem = summarize_problem(problem)
    raw_statements = sum(len(segment)
                         for segment in problem.segments)
    result.check(
        summary_problem.n_statements == raw_statements, label,
        f"summary lost statements: {summary_problem.n_statements} "
        f"!= {raw_statements}")
    with CostService(optimizer) as service:
        raw = build_cost_matrices(problem, service)
    with CostService(optimizer) as service:
        compressed = build_cost_matrices(summary_problem, service)
    result.check(
        np.array_equal(raw.exec_matrix, compressed.exec_matrix),
        label,
        "summary EXEC matrix differs from the raw segmented matrix "
        "(max abs diff "
        f"{np.max(np.abs(raw.exec_matrix - compressed.exec_matrix))!r})")
    result.check(
        np.array_equal(raw.trans_matrix, compressed.trans_matrix),
        label,
        "summary TRANS matrix differs from the raw segmented matrix")
    k = problem.k if problem.k is not None else 2
    for count_initial in (True, False):
        where = f"{label} k={k} count_initial={count_initial}"
        dp_raw = solve_constrained(raw, k, count_initial)
        dp_sum = solve_constrained(compressed, k, count_initial)
        result.check(
            dp_raw.cost == dp_sum.cost and
            dp_raw.assignment == dp_sum.assignment, where,
            f"k-aware DP disagrees across formulations: raw "
            f"{dp_raw.cost!r}/{dp_raw.assignment} vs summary "
            f"{dp_sum.cost!r}/{dp_sum.assignment}")


def check_lp_bounds(instance: MatrixInstance,
                    result: CheckResult) -> None:
    """LP-relaxation feasibility and certified bounds (family 7).

    For every budget up to just past the unconstrained change count,
    in both counting modes: the LP solution must pass the same
    invariant hook as the exact DP (budget, space bound, cost
    consistency), and its certified interval must contain the DP
    optimum — ``lower_bound <= dp.cost <= lp.cost`` with
    ``lp.cost - dp.cost <= gap``. A relative epsilon absorbs the
    dual bound's floating-point accumulation; the feasibility checks
    are exact.
    """
    matrices = instance.matrices
    for count_initial in (True, False):
        mode = f"count_initial={count_initial}"
        max_k = _max_useful_k(matrices, count_initial)
        for k in range(0, max_k + 2):
            where = f"{instance.label} k={k} {mode}"
            dp = solve_constrained(matrices, k, count_initial)
            lp = solve_lp_rounding(matrices, k, count_initial)
            violations = constrained_invariant_violations(
                matrices, lp, k, count_initial_change=count_initial,
                size_fn=instance.size_of,
                space_bound_bytes=instance.space_bound_bytes)
            if violations:
                result.failed(where, "LP solution: "
                              + "; ".join(violations))
            else:
                result.passed()
            epsilon = 1e-9 * max(1.0, abs(dp.cost))
            result.check(
                lp.lower_bound <= dp.cost + epsilon, where,
                f"LP lower bound {lp.lower_bound!r} exceeds the DP "
                f"optimum {dp.cost!r}")
            result.check(
                lp.cost >= dp.cost - epsilon, where,
                f"LP cost {lp.cost!r} beats the exact DP optimum "
                f"{dp.cost!r} — one of them is wrong")
            result.check(
                lp.cost - dp.cost <= lp.gap + epsilon, where,
                f"LP suboptimality {lp.cost - dp.cost!r} exceeds its "
                f"own reported gap {lp.gap!r}")
            result.check(
                lp.gap == lp.cost - lp.lower_bound, where,
                f"gap {lp.gap!r} != cost - lower_bound "
                f"{lp.cost - lp.lower_bound!r}")
            if k >= max_k:
                result.check(
                    lp.gap == 0.0 and lp.cost == dp.cost, where,
                    f"k >= l={max_k} must be exact with zero gap; "
                    f"got cost {lp.cost!r} (dp {dp.cost!r}), gap "
                    f"{lp.gap!r}")


# ----------------------------------------------------------------------
# family 8: compression identity + deployment scheduling
# ----------------------------------------------------------------------

def check_deployment(instance: TraceInstance,
                     result: CheckResult) -> None:
    """Compression identity and deployment scheduling (family 8).

    Three contracts:

    * **NONE bit-identity** — a structure at explicit level NONE is
      *the same structure* as one that never heard of compression:
      equal definition, bitwise-equal geometry, bitwise-equal
      estimates. Compressed variants order sanely (HEAVY pages <=
      LIGHT <= NONE, CPU factors the reverse).
    * **Signature soundness** — relevance signatures may never
      conflate compression levels whose estimates differ: whenever
      two configurations share a signature, their estimates must be
      bit-identical (this is the L3-cache-safety contract; a
      violation means the cache would silently serve one level's
      cost for another).
    * **Schedule feasibility + execution** — a scheduled deployment
      performs each action exactly once, only creates absent
      structures and drops present ones, keeps every intermediate
      configuration inside a space bound when one is given, never
      costs more than the unscheduled default order, has
      non-increasing concurrent-exec rates for a SELECT-only
      segment with a create-only transition, and — executed for
      real — lands the catalog exactly on the target (and resumes
      as a no-op). Leaves the database in the empty design.
    """
    from ..core.deployment import (execute_deployment,
                                   schedule_deployment)
    from ..core.structures import (Compression, Configuration,
                                   EMPTY_CONFIGURATION)
    from ..sqlengine.index import IndexGeometry

    db = instance.db
    optimizer = instance.service.optimizer
    label = instance.label
    schema = db.tables["t"].schema
    nrows = db.tables["t"].nrows

    candidates = sorted(
        {d for config in instance.problem.configurations
         for d in config.structures},
        key=lambda d: (d.table, d.columns))
    levels = (Compression.NONE, Compression.LIGHT, Compression.HEAVY)

    # --- NONE bit-identity and geometry ordering ---------------------
    for definition in candidates:
        where = f"{label} {definition.label}"
        result.check(
            definition.with_compression(Compression.NONE) ==
            definition, where,
            "explicit NONE variant is not the uncompressed identity")
        default_geometry = IndexGeometry.compute(
            schema, definition.columns, nrows)
        none_geometry = IndexGeometry.compute(
            schema, definition.columns, nrows, Compression.NONE)
        result.check(
            default_geometry == none_geometry, where,
            f"explicit-NONE geometry differs from default geometry: "
            f"{none_geometry!r} != {default_geometry!r}")
        geometries = [IndexGeometry.compute(schema, definition.columns,
                                            nrows, level)
                      for level in levels]
        result.check(
            geometries[2].leaf_pages <= geometries[1].leaf_pages <=
            geometries[0].leaf_pages, where,
            "compressed leaf pages do not shrink with level: " +
            ", ".join(str(g.leaf_pages) for g in geometries))
        result.check(
            geometries[0].cpu_factor == 1.0 and
            geometries[0].cpu_factor <= geometries[1].cpu_factor <=
            geometries[2].cpu_factor, where,
            "decode CPU factors not monotone in the level: " +
            ", ".join(str(g.cpu_factor) for g in geometries))

    # --- signature soundness across levels ---------------------------
    templates = {}
    for segment in instance.problem.segments:
        for statement in segment:
            template = optimizer.statement_template(statement.ast)
            templates.setdefault(template.key, template)
    conflated = 0
    for template in templates.values():
        for definition in candidates:
            by_level = []
            for level in levels:
                config = frozenset({definition.with_compression(level)})
                signature = optimizer.relevance_signature(template,
                                                          config)
                units = optimizer.estimate_template(
                    template, config).cost.total(db.params)
                by_level.append((level, signature, units))
            for i in range(len(by_level)):
                for j in range(i + 1, len(by_level)):
                    level_a, sig_a, units_a = by_level[i]
                    level_b, sig_b, units_b = by_level[j]
                    if sig_a == sig_b and units_a != units_b:
                        conflated += 1
                        result.failed(
                            f"{label} template={template.key!r} "
                            f"{definition.label}",
                            f"signature conflates {level_a.name} and "
                            f"{level_b.name} but estimates differ: "
                            f"{units_a!r} != {units_b!r}")
    result.check(
        conflated == 0, label,
        f"{conflated} signature conflation(s) across compression "
        f"levels (L3 cache would serve wrong-level costs)")

    # --- schedule feasibility ----------------------------------------
    segment = instance.problem.segments[0]
    source = Configuration({candidates[0]})
    target = Configuration(
        {candidates[1],
         candidates[2].with_compression(Compression.LIGHT),
         candidates[0].with_compression(Compression.HEAVY)})
    plan = schedule_deployment(instance.service, source, target,
                               segment)
    expected_creates = sorted(
        (d.label for d in target.added(source)))
    expected_drops = sorted(
        (d.label for d in target.dropped(source)))
    result.check(
        sorted(s.definition.label for s in plan.steps
               if s.action == "create") == expected_creates and
        sorted(s.definition.label for s in plan.steps
               if s.action == "drop") == expected_drops, label,
        f"schedule does not perform the symmetric difference exactly "
        f"once: {[s.label for s in plan.steps]}")
    configurations = plan.configurations()
    result.check(
        configurations[0] == source and
        configurations[-1] == target, label,
        "schedule endpoints are not (source, target)")
    greedy_only = schedule_deployment(instance.service, source,
                                      target, segment, exact_limit=0)
    result.check(
        plan.total_units <= greedy_only.total_units + 1e-9, label,
        f"exact-eligible schedule costs more than greedy/default: "
        f"{plan.total_units!r} > {greedy_only.total_units!r}")

    bound = max(
        optimizer.configuration_size_bytes(source.structures),
        optimizer.configuration_size_bytes(target.structures),
        max(optimizer.configuration_size_bytes(c.structures)
            for c in configurations))
    bounded = schedule_deployment(instance.service, source, target,
                                  segment, space_bound_bytes=bound)
    result.check(
        all(optimizer.configuration_size_bytes(c.structures) <= bound
            for c in bounded.configurations()), label,
        "bounded schedule exceeds the space bound mid-deployment")

    selects = segment.__class__(
        statements=tuple(s for s in segment.statements
                         if isinstance(s.ast, SelectStmt)),
        start=segment.start)
    create_only = schedule_deployment(
        instance.service, EMPTY_CONFIGURATION,
        Configuration({candidates[0], candidates[1]}), selects)
    rates = [step.exec_rate for step in create_only.steps]
    result.check(
        all(a >= b - 1e-9 for a, b in zip(rates, rates[1:])), label,
        f"SELECT-only create-only deployment has an increasing "
        f"intermediate exec rate: {rates}")

    # --- execution lands on the target, resume is a no-op ------------
    db.apply_configuration(set(source.structures))
    report = execute_deployment(db, plan)
    landed = Configuration(db.current_configuration())
    result.check(
        report.completed and landed == target, label,
        f"deployment landed on {landed.label}, not {target.label}")
    resumed = execute_deployment(db, plan)
    result.check(
        not resumed.executed and
        len(resumed.skipped) == len(plan.steps), label,
        "re-executing a completed plan was not a pure no-op")
    db.apply_configuration(set())


def replay_ranking_failures(
        metered_totals: Dict[Tuple[str, str], float],
        estimated_totals: Dict[Tuple[str, str], float],
        label: str = "figure3") -> List[str]:
    """Figure 3's verify pass: the cost model and the live engine must
    *rank* every pair of (workload, design) replays the same way.

    Absolute units differ between the two (estimates price each
    statement in isolation; the metered replay shares one buffer
    pool), but if any pairwise ordering flips, the estimated and
    measured versions of Figure 3 tell different stories.
    """
    failures: List[str] = []
    keys = sorted(metered_totals)
    if sorted(estimated_totals) != keys:
        return [f"[{label}] replay key sets differ: "
                f"{keys} vs {sorted(estimated_totals)}"]
    for a_index, a in enumerate(keys):
        for b in keys[a_index + 1:]:
            metered_order = _order(metered_totals[a],
                                   metered_totals[b])
            estimated_order = _order(estimated_totals[a],
                                     estimated_totals[b])
            if metered_order != estimated_order and \
                    0 not in (metered_order, estimated_order):
                failures.append(
                    f"[{label}] ranking flip for {a} vs {b}: metered "
                    f"{metered_totals[a]:.1f} vs "
                    f"{metered_totals[b]:.1f}, estimated "
                    f"{estimated_totals[a]:.1f} vs "
                    f"{estimated_totals[b]:.1f}")
    return failures


def _order(a: float, b: float, rel_tol: float = 0.02) -> int:
    """-1 / 0 / 1 ordering with a tolerance band: totals within
    ``rel_tol`` of each other count as tied (either order fine)."""
    if abs(a - b) <= rel_tol * max(abs(a), abs(b), 1.0):
        return 0
    return -1 if a < b else 1

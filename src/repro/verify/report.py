"""Result types for the verification harness.

A verification run executes many individual assertions grouped into
check *families* (solver equivalence, constrained invariants, cost
service, ground truth). Each family accumulates into a
:class:`CheckResult`; a :class:`VerificationReport` collects the
families, formats a human-readable summary, and converts to a non-zero
exit code when anything disagreed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import VerificationError

#: Maximum failures echoed per family in the formatted report; the
#: counts always reflect every failure.
MAX_SHOWN_FAILURES = 10


@dataclass(frozen=True)
class CheckFailure:
    """One disagreement found by a check.

    Attributes:
        family: the check family that found it.
        instance: which generated/real instance it occurred on
            (e.g. ``"matrices[seed=7] k=2"``).
        message: what disagreed, with both sides' values.
    """

    family: str
    instance: str
    message: str

    def format(self) -> str:
        return f"[{self.family}] {self.instance}: {self.message}"


@dataclass
class CheckResult:
    """Accumulated outcome of one check family.

    Attributes:
        family: short family key (``solvers``, ``invariants``,
            ``costservice``, ``groundtruth``).
        description: one-line summary of what the family verifies.
        checks: number of individual assertions evaluated.
        failures: the assertions that did not hold.
    """

    family: str
    description: str
    checks: int = 0
    failures: List[CheckFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def passed(self, n: int = 1) -> None:
        """Record ``n`` assertions that held."""
        self.checks += n

    def failed(self, instance: str, message: str) -> None:
        """Record one assertion that did not hold."""
        self.checks += 1
        self.failures.append(
            CheckFailure(self.family, instance, message))

    def check(self, condition: bool, instance: str,
              message: str) -> bool:
        """Record one assertion; ``message`` is kept on failure only."""
        if condition:
            self.passed()
        else:
            self.failed(instance, message)
        return condition


@dataclass
class VerificationReport:
    """Everything one verification run found.

    Attributes:
        results: one :class:`CheckResult` per family run.
        seconds: wall time of the whole run.
    """

    results: List[CheckResult] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def total_checks(self) -> int:
        return sum(result.checks for result in self.results)

    @property
    def failures(self) -> List[CheckFailure]:
        return [failure for result in self.results
                for failure in result.failures]

    def result_for(self, family: str) -> CheckResult:
        for result in self.results:
            if result.family == family:
                return result
        raise KeyError(f"no check family {family!r} in this report")

    def format(self, include_timing: bool = True) -> str:
        """Human-readable summary; ``include_timing=False`` drops the
        wall-time suffix so the output is bit-stable across runs
        (``repro chaos`` prints it that way for diffable logs)."""
        width = max((len(r.family) for r in self.results), default=8)
        lines = ["verification report:"]
        for result in self.results:
            status = "ok" if result.ok else \
                f"FAIL ({len(result.failures)})"
            lines.append(
                f"  {result.family:<{width}}  {result.checks:>6} "
                f"checks  {status:<10} {result.description}")
        total = (f"  total: {self.total_checks} checks, "
                 f"{len(self.failures)} failures")
        if include_timing:
            total += f", {self.seconds:.2f}s"
        lines.append(total)
        shown = 0
        for failure in self.failures:
            if shown >= MAX_SHOWN_FAILURES:
                lines.append(
                    f"  ... and {len(self.failures) - shown} more")
                break
            lines.append("  " + failure.format())
            shown += 1
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        """Raise :class:`~repro.errors.VerificationError` unless clean."""
        if not self.ok:
            raise VerificationError(self.format())

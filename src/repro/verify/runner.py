"""Orchestration: one call runs every check family.

:func:`run_verification` drives families 1-5, 7 and 8 over a batch of
randomized matrix instances and one or more live trace instances,
returning a :class:`~repro.verify.report.VerificationReport`
(family 6, fault resilience, runs separately via :func:`run_chaos`).
The ``repro verify`` CLI subcommand and the CI quick gate are thin
wrappers around it.

``quick`` shrinks the *live-engine* work (fewer rows, fewer blocks,
one trace instead of two); it never reduces the randomized solver
instances below the requested count — the solver-equivalence family
is cheap and is the one that must cover >= 50 instances in CI.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..errors import DesignError
from .checks import (check_constrained_invariants, check_cost_service,
                     check_deployment, check_ground_truth,
                     check_lp_bounds, check_plan_identity,
                     check_solver_equivalence,
                     check_summary_formulation)
from .generators import matrix_instances, random_trace_problem
from .report import CheckResult, VerificationReport

#: Families 1-5, 7 and 8 — the ones :func:`run_verification` owns.
#: Family 6 (``faultresilience``) runs via :func:`run_chaos`; family
#: 9 (``banditsafety``) via :func:`run_bandit_safety`.
CORE_FAMILIES = ("solvers", "invariants", "costservice",
                 "groundtruth", "planidentity", "scaleadvisor",
                 "deployment")


def run_verification(seed: int = 0, instances: int = 50,
                     quick: bool = False,
                     nrows: Optional[int] = None,
                     traces: Optional[int] = None,
                     families: Optional[Sequence[str]] = None
                     ) -> VerificationReport:
    """Run check families 1-5, 7 and 8.

    Args:
        seed: base seed; instance i uses ``seed + i``.
        instances: randomized matrix instances for families 1-2.
        quick: shrink the live-engine families (CI gate scale).
        nrows: table rows per trace instance (default 4000 quick,
            20000 full).
        traces: live trace instances (default 1 quick, 2 full).
        families: subset of :data:`CORE_FAMILIES` to run (all when
            omitted); instances and traces a selection never touches
            are skipped entirely.
    """
    if families is None:
        selected = set(CORE_FAMILIES)
    else:
        selected = set(families)
        unknown = selected.difference(CORE_FAMILIES)
        if unknown:
            raise DesignError(
                f"unknown verify families: {sorted(unknown)}; "
                f"core families are {', '.join(CORE_FAMILIES)}")
    start = time.perf_counter()
    if nrows is None:
        nrows = 4_000 if quick else 20_000
    if traces is None:
        traces = 1 if quick else 2
    n_blocks = 4 if quick else 6
    block_size = 25 if quick else 40

    solvers = CheckResult(
        "solvers", "vectorized DP == reference DP == explicit graph "
                   "shortest path, exactly")
    invariants = CheckResult(
        "invariants", "cost(k) monotone, cost(k>=l) == unconstrained, "
                      "changes <= k, SIZE(C_i) <= b")
    costservice = CheckResult(
        "costservice", "batched matrices bit-identical to scalar "
                       "estimation; epoch invalidation works")
    groundtruth = CheckResult(
        "groundtruth", "what-if estimates within budget of executed "
                       "metered cost; IoMetrics consistent")
    planidentity = CheckResult(
        "planidentity", "what-if plan trees structurally equal to "
                        "executor plan trees, per statement x config")
    scaleadvisor = CheckResult(
        "scaleadvisor", "summary formulation bit-identical to raw "
                        "matrices; LP solution feasible with a "
                        "certified bound containing the DP optimum")
    deployment = CheckResult(
        "deployment", "level-NONE structures bitwise uncompressed; "
                      "signatures never conflate levels; schedules "
                      "feasible, never worse than unscheduled, and "
                      "land exactly on the target")

    matrix_checks = (("solvers", check_solver_equivalence, solvers),
                     ("invariants", check_constrained_invariants,
                      invariants),
                     ("scaleadvisor", check_lp_bounds, scaleadvisor))
    trace_checks = (("costservice", check_cost_service, costservice),
                    ("groundtruth", check_ground_truth, groundtruth),
                    ("planidentity", check_plan_identity,
                     planidentity),
                    ("scaleadvisor", check_summary_formulation,
                     scaleadvisor),
                    ("deployment", check_deployment, deployment))

    if any(family in selected for family, _, _ in matrix_checks):
        for instance in matrix_instances(seed, instances):
            for family, check, result in matrix_checks:
                if family in selected:
                    check(instance, result)

    if any(family in selected for family, _, _ in trace_checks):
        for t in range(traces):
            trace = random_trace_problem(seed + t, nrows=nrows,
                                         n_blocks=n_blocks,
                                         block_size=block_size)
            for family, check, result in trace_checks:
                if family in selected:
                    check(trace, result)

    report = VerificationReport(
        results=[result for result in
                 (solvers, invariants, costservice, groundtruth,
                  planidentity, scaleadvisor, deployment)
                 if result.family in selected])
    report.seconds = time.perf_counter() - start
    return report


def run_chaos(seed: int = 0, plans: int = 3,
              quick: bool = False) -> VerificationReport:
    """Run check family 6 (``faultresilience``).

    Replays fixtures under injected fault plans: an exhaustive
    atomicity sweep over every build step, engine metric-conservation
    and row-convergence under ``plans`` randomized transient-only
    plans, advisor bit-identity under transient estimate faults, and
    graceful degradation under permanent estimate faults. Fully
    deterministic in ``seed``.

    Args:
        seed: base seed; randomized plan i uses ``seed + i``.
        plans: randomized transient-only fault plans for the engine
            convergence check.
        quick: stride the atomicity sweep and shrink the fixtures
            (CI gate scale).
    """
    # Imported lazily: chaos pulls in the whole engine and the
    # advisors, which families 1-5 callers should not pay for.
    from ..faults import chaos
    from ..faults.injector import random_fault_plan

    start = time.perf_counter()
    resilience = CheckResult("faultresilience",
                             chaos.FAMILY_DESCRIPTION)
    chaos.check_atomic_transitions(resilience, seed, quick=quick)
    for p in range(plans):
        chaos.check_engine_convergence(
            resilience, seed + p, random_fault_plan(seed + p),
            quick=quick)
    chaos.check_recommendation_convergence(resilience, seed,
                                           quick=quick)
    chaos.check_degradation(resilience, seed, quick=quick)
    report = VerificationReport(results=[resilience])
    report.seconds = time.perf_counter() - start
    return report


def run_bandit_safety(seed: int = 0, seeds: int = 2,
                      quick: bool = False) -> VerificationReport:
    """Run check family 9 (``banditsafety``).

    Sweeps every adversarial scenario in
    :data:`repro.faults.scenarios.SCENARIOS` through the safety-gated
    bandit tuner and audits the run on a clean (injector-free) twin:
    realized cost within the regression bound of stay-put at every
    observation prefix, no decision from degraded evidence, the
    what-if call budget respected, and injector-off determinism per
    seed. Fully deterministic in ``seed``.

    Args:
        seed: base seed; sweep seed i uses ``seed + i``.
        seeds: seeds swept per scenario.
        quick: run the scenarios' CI-gate layouts.
    """
    # Imported lazily, like chaos: the scenario library pulls in the
    # live engine and the bandit stack.
    from ..faults import scenarios

    start = time.perf_counter()
    banditsafety = CheckResult("banditsafety",
                               scenarios.FAMILY_DESCRIPTION)
    scenarios.check_bandit_safety(banditsafety, seed, seeds=seeds,
                                  quick=quick)
    report = VerificationReport(results=[banditsafety])
    report.seconds = time.perf_counter() - start
    return report

"""Pytest fixture library for the verification harness.

Import everything from a test suite's ``conftest.py``::

    from repro.verify.fixtures import *

and the fixtures below become available to every test in scope. They
wrap the harness's generators and check families so a test can say
"give me randomized instances" or "assert family N is clean on this
instance" in one line.
"""

from __future__ import annotations

from typing import Callable, List

import pytest

from ..faults.chaos import (check_atomic_transitions,
                            check_degradation,
                            check_engine_convergence,
                            check_recommendation_convergence)
from .checks import (check_constrained_invariants, check_cost_service,
                     check_ground_truth, check_plan_identity,
                     check_solver_equivalence)
from .generators import (MatrixInstance, TraceInstance,
                         matrix_instances, random_matrix_instance,
                         random_trace_problem)
from .report import CheckResult

__all__ = [
    # fixtures
    "assert_family_clean", "make_matrix_instance", "quick_trace",
    "verify_matrix_batch",
    # re-exported check families, so a conftest's ``import *`` gives
    # tests everything they need in one line
    "check_atomic_transitions", "check_constrained_invariants",
    "check_cost_service", "check_degradation",
    "check_engine_convergence", "check_ground_truth",
    "check_plan_identity", "check_recommendation_convergence",
    "check_solver_equivalence",
]


@pytest.fixture
def make_matrix_instance() -> Callable[[int], MatrixInstance]:
    """Factory: ``make_matrix_instance(seed)`` -> MatrixInstance."""
    return random_matrix_instance


@pytest.fixture(scope="session")
def quick_trace() -> TraceInstance:
    """One small live trace instance, shared across the session.

    Session-scoped because building and loading the database is the
    expensive part; the check families do not mutate the instance
    destructively (ground truth restores the empty design).
    """
    return random_trace_problem(seed=0, nrows=4_000, n_blocks=4,
                                block_size=25)


@pytest.fixture
def assert_family_clean() -> Callable[..., CheckResult]:
    """Run one check family and fail the test on any disagreement.

    Usage::

        def test_solvers(make_matrix_instance, assert_family_clean):
            assert_family_clean(check_solver_equivalence,
                                make_matrix_instance(7))
    """

    def _run(family: Callable, instance, **kwargs) -> CheckResult:
        result = CheckResult(getattr(family, "__name__", "family"),
                             "fixture-driven check")
        family(instance, result, **kwargs)
        if not result.ok:
            pytest.fail("\n".join(
                failure.format() for failure in result.failures))
        return result

    return _run


@pytest.fixture
def verify_matrix_batch(
        assert_family_clean) -> Callable[[int, int],
                                         List[MatrixInstance]]:
    """Run families 1+2 over a seeded batch of matrix instances."""

    def _run(seed: int, count: int) -> List[MatrixInstance]:
        batch = matrix_instances(seed, count)
        for instance in batch:
            assert_family_clean(check_solver_equivalence, instance)
            assert_family_clean(check_constrained_invariants, instance)
        return batch

    return _run

"""Verification harness: differential testing and invariant checking.

The solvers in :mod:`repro.core` deliberately ship multiple
implementations of the same optimum (vectorized DP, pure-Python
reference, explicit graph), and the engine deliberately separates
estimation (:mod:`repro.sqlengine.whatif`) from execution. This
package turns that redundancy into an executable oracle with five
check families:

1. solver equivalence — all solver paths agree exactly (0 ulp);
2. constrained invariants — every k-aware solution satisfies the
   paper's constraints (monotone cost, budget, space bound);
3. cost service — batched estimation is bit-identical to scalar, and
   cache invalidation tracks the stats epoch;
4. ground truth — what-if estimates stay within per-access-path
   budgets of costs metered on the live engine;
5. plan identity — the what-if optimizer and the executor pick
   structurally identical physical-plan trees for every statement x
   configuration;
6. fault resilience — catalog atomicity, metric conservation, and
   convergence under injected faults (:mod:`repro.faults`, run via
   ``repro chaos``);
7. scale advisor — the compressed workload-summary formulation fills
   bit-identical cost matrices, and the LP-relaxation solver's
   certified interval contains the exact DP optimum while its
   solution stays feasible;
9. bandit safety — the safety-gated online bandit tuner stays within
   its regression bound of stay-put under every adversarial chaos
   scenario, never decides on degraded evidence, and respects its
   what-if call budget (:mod:`repro.faults.scenarios`, run via
   ``repro verify --families banditsafety`` or
   ``repro chaos --scenario``).

Entry points: ``repro verify`` on the command line,
:func:`~repro.verify.runner.run_verification` from code, and
``from repro.verify.fixtures import *`` in a test suite's conftest.
"""

from .checks import (DEFAULT_GROUND_TRUTH_BUDGETS,
                     check_constrained_invariants, check_cost_service,
                     check_ground_truth, check_lp_bounds,
                     check_plan_identity, check_solver_equivalence,
                     check_summary_formulation,
                     replay_ranking_failures,
                     solver_agreement_failures)
from .generators import (MatrixInstance, TraceInstance,
                         matrix_instances, random_matrix_instance,
                         random_trace_problem)
from .report import (CheckFailure, CheckResult, VerificationReport)
from .runner import (CORE_FAMILIES, run_bandit_safety, run_chaos,
                     run_verification)

__all__ = [
    "DEFAULT_GROUND_TRUTH_BUDGETS",
    "CheckFailure", "CheckResult", "MatrixInstance", "TraceInstance",
    "VerificationReport",
    "check_constrained_invariants", "check_cost_service",
    "check_ground_truth", "check_lp_bounds", "check_plan_identity",
    "check_solver_equivalence", "check_summary_formulation",
    "CORE_FAMILIES",
    "matrix_instances", "random_matrix_instance",
    "random_trace_problem", "replay_ranking_failures",
    "run_bandit_safety", "run_chaos", "run_verification",
    "solver_agreement_failures",
]

"""Instance generators feeding the verification checks.

Two kinds of instance:

* :func:`random_matrix_instance` — a synthetic :class:`~repro.core.
  costmatrix.CostMatrices` with per-configuration sizes and a space
  bound. Seeds cycle through variants that historically shook out
  solver bugs: continuous costs, integer-quantized costs (forcing
  exact ties so tie-breaking rules are exercised), zero transition
  costs, and sparse zero execution costs.

* :func:`random_trace_problem` — a small *live* setup: a populated
  :class:`~repro.sqlengine.database.Database`, a randomly-mixed
  point-query workload over it, a :class:`~repro.core.problem.
  ProblemInstance` on the paper's candidate space, and a shared
  :class:`~repro.core.costservice.CostService`. The cost-service and
  ground-truth families run against these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.costmatrix import CostMatrices
from ..core.costservice import CostService
from ..core.problem import ProblemInstance
from ..core.structures import (Configuration, EMPTY_CONFIGURATION,
                               single_index_configurations)
from ..sqlengine.database import Database
from ..sqlengine.index import IndexDef
from ..workload.mixes import (PAPER_MIXES, PAPER_VALUE_RANGE,
                              paper_generator)
from ..workload.generator import workload_from_block_mixes
from ..workload.model import Workload
from ..workload.segmentation import segment_by_count


@dataclass(frozen=True)
class MatrixInstance:
    """One synthetic problem for the matrix-level check families.

    Attributes:
        label: identifies the instance in failure messages.
        matrices: the EXEC/TRANS matrices.
        sizes: bytes per configuration column (aligned with
            ``matrices.configurations``).
        space_bound_bytes: bound every candidate satisfies (the SIZE
            invariant must therefore hold for any solver output).
    """

    label: str
    matrices: CostMatrices
    sizes: Tuple[int, ...]
    space_bound_bytes: int

    def size_of(self, cfg_index: int) -> int:
        return self.sizes[cfg_index]


def synthetic_configurations(n: int) -> Tuple[Configuration, ...]:
    """``n`` distinct configurations: empty plus single synthetic
    indexes (the verification checks only need identity, not
    structure)."""
    configs: List[Configuration] = [EMPTY_CONFIGURATION]
    configs.extend(Configuration({IndexDef("t", (f"v{i}",))})
                   for i in range(n - 1))
    return tuple(configs)


def random_matrix_instance(seed: int) -> MatrixInstance:
    """A randomized :class:`MatrixInstance`; deterministic per seed.

    Seeds cycle through four cost variants (continuous / quantized /
    zero-TRANS / sparse-zero-EXEC) and alternate between pinned and
    free final configurations.
    """
    rng = np.random.default_rng(seed)
    n_seg = int(rng.integers(2, 9))
    n_cfg = int(rng.integers(2, 7))
    exec_matrix = rng.uniform(0.0, 100.0, (n_seg, n_cfg))
    trans_matrix = rng.uniform(0.0, 50.0, (n_cfg, n_cfg))
    variant = seed % 4
    if variant == 1:
        # Integer-quantized costs: equal-cost paths become common, so
        # tie-breaking rules are actually exercised.
        exec_matrix = np.floor(exec_matrix / 10.0) * 10.0
        trans_matrix = np.floor(trans_matrix / 10.0) * 10.0
    elif variant == 2:
        trans_matrix = np.zeros_like(trans_matrix)
    elif variant == 3:
        exec_matrix[rng.uniform(size=exec_matrix.shape) < 0.4] = 0.0
    np.fill_diagonal(trans_matrix, 0.0)

    initial_index = int(rng.integers(0, n_cfg))
    final_index = None
    if rng.uniform() < 0.5:
        final_index = int(rng.integers(0, n_cfg))
    matrices = CostMatrices(
        configurations=synthetic_configurations(n_cfg),
        exec_matrix=exec_matrix,
        trans_matrix=trans_matrix,
        initial_index=initial_index,
        final_index=final_index)
    sizes = tuple(int(s) * 1024
                  for s in rng.integers(0, 16, n_cfg))
    label = (f"matrices[seed={seed}] "
             f"({n_seg}x{n_cfg}, variant={variant}, "
             f"final={'pinned' if final_index is not None else 'free'})")
    return MatrixInstance(label=label, matrices=matrices, sizes=sizes,
                          space_bound_bytes=max(sizes))


def matrix_instances(seed: int, count: int) -> List[MatrixInstance]:
    """``count`` instances seeded ``seed .. seed+count-1``."""
    return [random_matrix_instance(seed + i) for i in range(count)]


@dataclass
class TraceInstance:
    """One live database + workload for the engine-level families.

    Attributes:
        label: identifies the instance in failure messages.
        db: populated database (table ``t`` with columns a, b, c, d).
        workload: the blocked point-query trace.
        problem: segmented problem over the paper's candidate space.
        service: cost service wrapping ``db``'s what-if optimizer.
    """

    label: str
    db: Database
    workload: Workload
    problem: ProblemInstance
    service: CostService


def random_trace_problem(seed: int, nrows: int = 20_000,
                         n_blocks: int = 6,
                         block_size: int = 40) -> TraceInstance:
    """A small live instance with a randomly-shuffled block-mix trace.

    The table matches the paper's (a, b, c, d uniform over
    ``PAPER_VALUE_RANGE``); the workload draws ``n_blocks`` mixes at
    random from Table 1's A-D, so different seeds stress different
    shift patterns.
    """
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_table("t", [("a", "INTEGER"), ("b", "INTEGER"),
                          ("c", "INTEGER"), ("d", "INTEGER")])
    lo, hi = PAPER_VALUE_RANGE
    db.bulk_load("t", {column: rng.integers(lo, hi, nrows)
                       for column in ("a", "b", "c", "d")})
    mix_names = list(PAPER_MIXES)
    block_mixes = [PAPER_MIXES[mix_names[int(rng.integers(0, len(
        mix_names)))]] for _ in range(n_blocks)]
    generator = paper_generator(seed=seed + 1)
    workload = workload_from_block_mixes(
        generator, block_mixes, block_size,
        name=f"verify-trace-{seed}")
    candidates = [IndexDef("t", ("a",)), IndexDef("t", ("b",)),
                  IndexDef("t", ("c",)), IndexDef("t", ("d",)),
                  IndexDef("t", ("a", "b")), IndexDef("t", ("c", "d"))]
    problem = ProblemInstance(
        segments=tuple(segment_by_count(workload, block_size)),
        configurations=single_index_configurations(candidates),
        initial=EMPTY_CONFIGURATION, k=2,
        final=EMPTY_CONFIGURATION)
    service = CostService(db.what_if())
    label = (f"trace[seed={seed}] ({nrows} rows, {n_blocks} blocks "
             f"of {block_size}, mixes="
             f"{''.join(m.name for m in block_mixes)})")
    return TraceInstance(label=label, db=db, workload=workload,
                         problem=problem, service=service)

"""Zero-copy shared-memory statistics blocks for parallel costing.

The parallel matrix builds in :class:`~repro.core.costservice.
CostService` ship a :class:`~repro.sqlengine.whatif.CatalogSnapshot`
to every worker process. The heavy part of a snapshot is the
statistics: per-column equi-depth histograms whose boundary arrays
each worker used to re-deserialize from its own pickled copy. This
module publishes those arrays **once** into a single
``multiprocessing.shared_memory`` block; workers attach read-only
NumPy views onto the same physical pages instead of unpickling
anything.

The split is exact, not approximate:

* :func:`publish_stats` concatenates every numeric column's histogram
  boundaries into one float64 block and returns a
  :class:`SharedStatsBlock` (owner side) whose picklable
  :class:`SharedStatsHandle` carries the block name plus a scalar
  *skeleton* of the statistics — table/column shapes, counts, domains,
  and ``(offset, length)`` spans into the block. The handle is a few
  hundred bytes regardless of histogram resolution.
* :func:`attach_stats` maps the block and rebuilds
  ``{table: TableStats}`` where each histogram's ``boundaries`` is a
  **read-only float64 view** of the shared pages. The values are the
  exact floats the owner wrote, and every estimator path
  (``np.searchsorted``, interpolation) computes the same IEEE-754
  operations on them, so attached statistics yield bit-identical
  estimates to pickled ones — the verify harness's family 3 checks
  shared-memory-vs-pickle matrices with ``np.array_equal``.

Lifetime is owned by whoever called :func:`publish_stats` (in
practice the cost service, which ties it to its worker-pool
lifecycle): :meth:`SharedStatsBlock.close` unmaps *and unlinks* the
block. Attachments hold their own mapping open (closing the owner
never invalidates live attachments on POSIX), but new attachments
fail once the owner unlinked. Block names are kernel-generated, so
two services in one process can never collide.

When ``multiprocessing.shared_memory`` is unavailable, the block
cannot be created, or there are no histogram arrays worth sharing,
:func:`publish_stats` returns ``None`` and callers fall back to the
pickled-statistics path unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from .stats import ColumnStats, EquiDepthHistogram, TableStats

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


def shared_memory_available() -> bool:
    """Whether this platform can publish shared-memory stats blocks."""
    return _shared_memory is not None


@dataclass(frozen=True)
class HistogramRef:
    """Span of one histogram's boundaries inside the shared block."""

    offset: int  #: element (not byte) offset into the float64 block
    length: int  #: number of boundary entries
    total: int  #: the histogram's row total


@dataclass(frozen=True)
class ColumnSkeleton:
    """Scalar fields of one :class:`ColumnStats` (arrays stay in the
    block, referenced by ``histogram``)."""

    name: str
    n_values: int
    n_distinct: int
    min_value: Optional[float]
    max_value: Optional[float]
    histogram: Optional[HistogramRef]


@dataclass(frozen=True)
class TableSkeleton:
    """Scalar fields of one :class:`TableStats`."""

    table: str
    nrows: int
    n_pages: int
    row_width: int
    columns: Tuple[ColumnSkeleton, ...]


@dataclass(frozen=True)
class SharedStatsHandle:
    """Picklable descriptor of a published stats block.

    This is what actually travels to worker processes: a block name
    and the scalar skeletons. Its pickled size is independent of
    histogram resolution — the boundary arrays never leave the shared
    pages.
    """

    block_name: str
    n_floats: int
    tables: Tuple[TableSkeleton, ...]


class SharedStatsBlock:
    """Owner side of a published block: unmaps and unlinks on
    :meth:`close` (idempotent)."""

    def __init__(self, shm, handle: SharedStatsHandle):
        self._shm = shm
        self.handle = handle

    @property
    def name(self) -> str:
        return self.handle.block_name

    def close(self) -> None:
        """Release the block: unmap the owner's view and unlink the
        name so the kernel reclaims the pages once the last attachment
        goes away. New attachments fail after this."""
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()
            # Re-register before unlinking: attachments in this
            # process (or fork children sharing our tracker) may have
            # unregistered the name (see _open_attachment), and
            # unlink() unconditionally unregisters again. Registration
            # is a set-add in the tracker, so this is idempotent and
            # keeps the register/unregister ledger balanced.
            try:
                from multiprocessing import resource_tracker
                resource_tracker.register(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


class AttachedStats:
    """Worker side: the rebuilt ``{table: TableStats}`` mapping plus
    the shared-memory mapping that keeps its histogram views alive.

    Keep this object referenced for as long as the statistics are in
    use (the replica optimizer stores it); dropping it unmaps the
    views' backing pages.
    """

    def __init__(self, stats: Dict[str, TableStats], shm):
        self.stats = stats
        self._shm = shm

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


def _column_arrays(stats: Mapping[str, TableStats]):
    """Yield ``(table, column, boundaries_as_float64)`` for every
    histogram, in deterministic (table, column-insertion) order."""
    for table in sorted(stats):
        table_stats = stats[table]
        for name, column in table_stats.columns.items():
            if column.histogram is not None:
                yield (table, name,
                       np.asarray(column.histogram.boundaries,
                                  dtype=np.float64))


def publish_stats(stats: Mapping[str, TableStats]
                  ) -> Optional[SharedStatsBlock]:
    """Publish ``stats`` into one shared-memory block.

    Returns ``None`` — callers keep the pickled path — when shared
    memory is unavailable, the block cannot be allocated, or no
    column carries a histogram (nothing worth sharing).
    """
    if _shared_memory is None:
        return None
    arrays = list(_column_arrays(stats))
    n_floats = sum(len(array) for _t, _c, array in arrays)
    if n_floats == 0:
        return None
    try:
        shm = _shared_memory.SharedMemory(create=True,
                                          size=n_floats * 8)
    except OSError:  # pragma: no cover - e.g. /dev/shm exhausted
        return None
    block = np.ndarray((n_floats,), dtype=np.float64, buffer=shm.buf)
    refs: Dict[Tuple[str, str], HistogramRef] = {}
    cursor = 0
    for table, column, array in arrays:
        block[cursor:cursor + len(array)] = array
        histogram = stats[table].columns[column].histogram
        refs[(table, column)] = HistogramRef(
            offset=cursor, length=len(array), total=histogram.total)
        cursor += len(array)
    tables = []
    for table in sorted(stats):
        table_stats = stats[table]
        columns = tuple(
            ColumnSkeleton(
                name=column.name, n_values=column.n_values,
                n_distinct=column.n_distinct,
                min_value=column.min_value,
                max_value=column.max_value,
                histogram=refs.get((table, column.name)))
            for column in table_stats.columns.values())
        tables.append(TableSkeleton(
            table=table_stats.table, nrows=table_stats.nrows,
            n_pages=table_stats.n_pages,
            row_width=table_stats.row_width, columns=columns))
    handle = SharedStatsHandle(block_name=shm.name, n_floats=n_floats,
                               tables=tuple(tables))
    return SharedStatsBlock(shm, handle)


def _open_attachment(name: str):
    """Attach to a named block without adopting its lifetime.

    A tracked attachment would let the attacher's resource tracker
    unlink the block when that process exits uncleanly — including
    spawned pool workers that merely attached (bpo-38119) — destroying
    it for everyone else. Ownership is explicit instead: only the
    :class:`SharedStatsBlock` owner stays tracked and unlinks, exactly
    once, in ``close()``/``__del__``. Python 3.13+ skips tracking via
    ``track=False``; older versions unregister right after attach.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    shm = _shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass
    return shm


def attach_stats(handle: SharedStatsHandle) -> AttachedStats:
    """Map the handle's block and rebuild the statistics with
    read-only histogram views (zero-copy).

    Raises ``FileNotFoundError`` when the block no longer exists
    (owner closed it) and :class:`ImportError`-like errors when shared
    memory is unsupported — callers treat both as a missing catalog.
    """
    if _shared_memory is None:  # pragma: no cover - platform guard
        raise FileNotFoundError(
            "shared memory unavailable on this platform")
    shm = _open_attachment(handle.block_name)
    block = np.ndarray((handle.n_floats,), dtype=np.float64,
                       buffer=shm.buf)
    block.flags.writeable = False
    stats: Dict[str, TableStats] = {}
    for table in handle.tables:
        columns: Dict[str, ColumnStats] = {}
        for skeleton in table.columns:
            histogram = None
            if skeleton.histogram is not None:
                ref = skeleton.histogram
                view = block[ref.offset:ref.offset + ref.length]
                histogram = EquiDepthHistogram(boundaries=view,
                                               total=ref.total)
            columns[skeleton.name] = ColumnStats(
                name=skeleton.name, n_values=skeleton.n_values,
                n_distinct=skeleton.n_distinct,
                min_value=skeleton.min_value,
                max_value=skeleton.max_value, histogram=histogram)
        stats[table.table] = TableStats(
            table=table.table, nrows=table.nrows,
            n_pages=table.n_pages, row_width=table.row_width,
            columns=columns)
    return AttachedStats(stats, shm)

"""Structure-variant compression levels.

Compression-aware physical design (see PAPERS.md) widens the structure
space along a second axis: every index or view candidate exists at a
*compression level* that trades page count against per-row CPU. A
compressed structure packs more entries per page — scans and seeks
touch proportionally fewer pages — but every entry must be decoded, so
per-row CPU charges inflate, and the build pays an extra encode pass on
top of the usual scan/sort/write.

The three levels are deliberately coarse (the paper's point is the
*shape* of the trade-off, not a codec catalog):

* :attr:`Compression.NONE` — the seed engine's plain structures. Its
  factors are exactly ``1.0``/``0.0`` so every formula in the geometry
  and cost layers degenerates to the historical computation *bit for
  bit*; the ``deployment`` verify family pins this.
* :attr:`Compression.LIGHT` — prefix/delta style: ~40% narrower
  entries, mild decode cost.
* :attr:`Compression.HEAVY` — dictionary+bitpack style: ~65% narrower
  entries, significant decode cost, markedly costlier build.

The level is part of a definition's *identity*: two ``IndexDef`` that
differ only in compression are distinct candidates, distinct catalog
objects, distinct axes in the cost matrices, and — critically —
distinct members of every relevance signature, so the cost service's
L3 cache can never conflate variants.
"""

from __future__ import annotations

from enum import IntEnum

from ..errors import SchemaError

__all__ = ["Compression"]


class Compression(IntEnum):
    """Compression level of a design structure (index or view).

    An ``IntEnum`` so levels order naturally (NONE < LIGHT < HEAVY),
    pickle compactly across the cost service's worker-pool wire
    protocol, and sort stably inside
    :func:`~repro.sqlengine.index.structure_sort_key`.
    """

    NONE = 0
    LIGHT = 1
    HEAVY = 2

    @property
    def page_fraction(self) -> float:
        """Entry/row width multiplier (``1.0`` means uncompressed)."""
        return _PAGE_FRACTION[self.value]

    @property
    def cpu_factor(self) -> float:
        """Per-row CPU inflation on reads (decode cost)."""
        return _CPU_FACTOR[self.value]

    @property
    def build_cpu_factor(self) -> float:
        """CPU inflation of the build's sort/copy pass (encode cost)."""
        return _BUILD_CPU_FACTOR[self.value]

    @property
    def suffix(self) -> str:
        """Label suffix: empty at NONE so seed labels are unchanged."""
        return _SUFFIX[self.value]

    @classmethod
    def parse(cls, text: str) -> "Compression":
        """Parse a level from CLI spellings (name, ``L``/``H``, int)."""
        token = text.strip().upper()
        aliases = {"": cls.NONE, "N": cls.NONE, "L": cls.LIGHT,
                   "H": cls.HEAVY}
        if token in aliases:
            return aliases[token]
        if token in cls.__members__:
            return cls[token]
        try:
            return cls(int(token))
        except (ValueError, KeyError):
            raise SchemaError(
                f"unknown compression level {text!r} (expected one of "
                f"{', '.join(m.name for m in cls)})") from None


#: Width multiplier per level — fewer bytes per entry, hence fewer
#: pages per structure. NONE is exactly 1.0 (bit-identity anchor).
_PAGE_FRACTION = (1.0, 0.6, 0.35)

#: Read-side per-row CPU multiplier (decode). NONE is exactly 1.0:
#: multiplying a charge by 1.0 is IEEE-exact, so the NONE cost path is
#: bitwise the seed path.
_CPU_FACTOR = (1.0, 1.3, 1.8)

#: Build-side CPU multiplier (encode during the bulk load).
_BUILD_CPU_FACTOR = (1.0, 1.5, 2.5)

#: Label suffixes; NONE must stay empty so ``I(a,b)`` prints as before.
_SUFFIX = ("", "@L", "@H")

"""Recursive-descent parser producing the AST in :mod:`.ast`."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import ParseError, SqlSyntaxError, SqlUnsupportedError
from ..types import Value
from .ast import (AGGREGATE_FUNCS, Aggregate, Between, Comparison,
                  Conjunction, CreateIndexStmt, CreateTableStmt,
                  DeleteStmt, DropIndexStmt, DropTableStmt, InsertStmt,
                  OrderBy, SelectStmt, Statement, UpdateStmt)
from .lexer import Token, tokenize


def parse(sql: str) -> Statement:
    """Parse one SQL statement (an optional trailing ``;`` is allowed).

    Raises:
        ParseError: on malformed SQL. The exception carries the full
            statement text and the character offset of the offending
            token (``exc.statement`` / ``exc.position``), and
            ``exc.excerpt()`` renders a caret pointing at it.
    """
    try:
        return _Parser(sql).parse_statement()
    except ParseError as exc:
        # Lexer and parser sites raise with a position only; the full
        # statement is attached here, once, at the public entry point.
        exc.statement = sql
        raise


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise SqlSyntaxError(
                f"expected {wanted}, found {token.text or 'end of input'!r}",
                token.position)
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            self.advance()
            return True
        return False

    def at_keyword(self, word: str) -> bool:
        return self.current.kind == "KEYWORD" and self.current.text == word

    # -- grammar --------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self.current
        if token.kind != "KEYWORD":
            raise SqlSyntaxError(
                f"expected a statement, found {token.text!r}",
                token.position)
        handlers = {
            "SELECT": self._select,
            "INSERT": self._insert,
            "UPDATE": self._update,
            "DELETE": self._delete,
            "CREATE": self._create,
            "DROP": self._drop,
        }
        if token.text not in handlers:
            raise SqlUnsupportedError(
                f"unsupported statement {token.text}")
        statement = handlers[token.text]()
        self.accept("SYMBOL", ";")
        self.expect("EOF")
        return statement

    def _select(self) -> SelectStmt:
        self.expect("KEYWORD", "SELECT")
        columns: List[str] = []
        aggregates: List[Aggregate] = []
        if self.accept("SYMBOL", "*"):
            columns = ["*"]
        else:
            self._select_item(columns, aggregates)
            while self.accept("SYMBOL", ","):
                self._select_item(columns, aggregates)
        self.expect("KEYWORD", "FROM")
        table = self.expect("IDENT").text
        where = self._optional_where()
        group_by = None
        if self.accept("KEYWORD", "GROUP"):
            self.expect("KEYWORD", "BY")
            group_by = self.expect("IDENT").text
        if columns and aggregates:
            # Mixing is only legal as "SELECT <group col>, aggs ...
            # GROUP BY <group col>".
            if group_by is None or columns != [group_by]:
                raise SqlUnsupportedError(
                    "plain columns can only join aggregates as the "
                    "GROUP BY column")
            columns = []
        elif group_by is not None and not aggregates:
            raise SqlUnsupportedError(
                "GROUP BY requires aggregate functions")
        order_by = None
        if self.accept("KEYWORD", "ORDER"):
            self.expect("KEYWORD", "BY")
            column = self.expect("IDENT").text
            descending = False
            if self.accept("KEYWORD", "DESC"):
                descending = True
            else:
                self.accept("KEYWORD", "ASC")
            order_by = OrderBy(column=column, descending=descending)
        limit = None
        if self.accept("KEYWORD", "LIMIT"):
            limit = int(self.expect("NUMBER").text)
            if limit < 0:
                raise SqlSyntaxError("LIMIT must be non-negative",
                                     self.current.position)
        if order_by is not None and aggregates:
            if group_by is None or order_by.column != group_by:
                raise SqlUnsupportedError(
                    "with aggregates, ORDER BY is only supported on "
                    "the GROUP BY column")
        return SelectStmt(table=table, columns=tuple(columns),
                          where=where, limit=limit,
                          aggregates=tuple(aggregates),
                          order_by=order_by, group_by=group_by)

    def _select_item(self, columns: List[str],
                     aggregates: List["Aggregate"]) -> None:
        """One select-list item: a column or ``FUNC(col | *)``."""
        name_token = self.expect("IDENT")
        if not self.accept("SYMBOL", "("):
            columns.append(name_token.text)
            return
        func = name_token.text.upper()
        if func not in AGGREGATE_FUNCS:
            raise SqlSyntaxError(
                f"unknown aggregate function {name_token.text!r}",
                name_token.position)
        if self.accept("SYMBOL", "*"):
            column = None
            if func != "COUNT":
                raise SqlSyntaxError(f"{func}(*) is not valid",
                                     name_token.position)
        else:
            column = self.expect("IDENT").text
        self.expect("SYMBOL", ")")
        aggregates.append(Aggregate(func=func, column=column))

    def _insert(self) -> InsertStmt:
        self.expect("KEYWORD", "INSERT")
        self.expect("KEYWORD", "INTO")
        table = self.expect("IDENT").text
        self.expect("SYMBOL", "(")
        columns = [self.expect("IDENT").text]
        while self.accept("SYMBOL", ","):
            columns.append(self.expect("IDENT").text)
        self.expect("SYMBOL", ")")
        self.expect("KEYWORD", "VALUES")
        rows: List[Tuple[Value, ...]] = [self._value_row(len(columns))]
        while self.accept("SYMBOL", ","):
            rows.append(self._value_row(len(columns)))
        return InsertStmt(table=table, columns=tuple(columns),
                          rows=tuple(rows))

    def _value_row(self, arity: int) -> Tuple[Value, ...]:
        self.expect("SYMBOL", "(")
        values = [self._literal()]
        while self.accept("SYMBOL", ","):
            values.append(self._literal())
        close = self.expect("SYMBOL", ")")
        if len(values) != arity:
            raise SqlSyntaxError(
                f"VALUES row has {len(values)} values, expected {arity}",
                close.position)
        return tuple(values)

    def _update(self) -> UpdateStmt:
        self.expect("KEYWORD", "UPDATE")
        table = self.expect("IDENT").text
        self.expect("KEYWORD", "SET")
        assignments = [self._assignment()]
        while self.accept("SYMBOL", ","):
            assignments.append(self._assignment())
        return UpdateStmt(table=table, assignments=tuple(assignments),
                          where=self._optional_where())

    def _assignment(self) -> Tuple[str, Value]:
        column = self.expect("IDENT").text
        self.expect("SYMBOL", "=")
        return column, self._literal()

    def _delete(self) -> DeleteStmt:
        self.expect("KEYWORD", "DELETE")
        self.expect("KEYWORD", "FROM")
        table = self.expect("IDENT").text
        return DeleteStmt(table=table, where=self._optional_where())

    def _create(self) -> Statement:
        self.expect("KEYWORD", "CREATE")
        if self.accept("KEYWORD", "TABLE"):
            table = self.expect("IDENT").text
            self.expect("SYMBOL", "(")
            columns = [self._column_def()]
            while self.accept("SYMBOL", ","):
                columns.append(self._column_def())
            self.expect("SYMBOL", ")")
            return CreateTableStmt(table=table, columns=tuple(columns))
        if self.accept("KEYWORD", "INDEX"):
            name = self.expect("IDENT").text
            self.expect("KEYWORD", "ON")
            table = self.expect("IDENT").text
            self.expect("SYMBOL", "(")
            columns = [self.expect("IDENT").text]
            while self.accept("SYMBOL", ","):
                columns.append(self.expect("IDENT").text)
            self.expect("SYMBOL", ")")
            return CreateIndexStmt(name=name, table=table,
                                   columns=tuple(columns))
        raise SqlSyntaxError("expected TABLE or INDEX after CREATE",
                             self.current.position)

    def _column_def(self) -> Tuple[str, str]:
        name = self.expect("IDENT").text
        type_token = self.current
        if type_token.kind not in ("IDENT", "KEYWORD"):
            raise SqlSyntaxError(
                f"expected a type for column {name!r}",
                type_token.position)
        self.advance()
        return name, type_token.text

    def _drop(self) -> Statement:
        self.expect("KEYWORD", "DROP")
        if self.accept("KEYWORD", "INDEX"):
            return DropIndexStmt(name=self.expect("IDENT").text)
        if self.accept("KEYWORD", "TABLE"):
            return DropTableStmt(table=self.expect("IDENT").text)
        raise SqlSyntaxError("expected TABLE or INDEX after DROP",
                             self.current.position)

    def _optional_where(self) -> Optional[Conjunction]:
        if not self.accept("KEYWORD", "WHERE"):
            return None
        predicates = [self._predicate()]
        while self.accept("KEYWORD", "AND"):
            predicates.append(self._predicate())
        return Conjunction(tuple(predicates))

    def _predicate(self):
        column = self.expect("IDENT").text
        if self.accept("KEYWORD", "BETWEEN"):
            lo = self._literal()
            self.expect("KEYWORD", "AND")
            hi = self._literal()
            return Between(column=column, lo=lo, hi=hi)
        op_token = self.current
        if op_token.kind != "SYMBOL" or op_token.text not in (
                "=", "!=", "<", "<=", ">", ">="):
            raise SqlSyntaxError(
                f"expected a comparison operator after {column!r}",
                op_token.position)
        self.advance()
        return Comparison(column=column, op=op_token.text,
                          value=self._literal())

    def _literal(self) -> Value:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            text = token.text
            if any(c in text for c in ".eE"):
                return float(text)
            return int(text)
        if token.kind == "STRING":
            self.advance()
            return token.text
        raise SqlSyntaxError(f"expected a literal, found {token.text!r}",
                             token.position)

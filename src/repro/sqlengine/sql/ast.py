"""Abstract syntax tree for the supported SQL subset.

The subset covers what the paper's experiments (and realistic
variations of them) need: DDL for tables and indexes, bulk-insert, and
single-table SELECT/UPDATE/DELETE with conjunctive comparison
predicates — plus aggregates (COUNT/MIN/MAX/SUM/AVG), single-column
GROUP BY, ORDER BY, and LIMIT for the example workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ...errors import SqlUnsupportedError
from ..types import Value

CompareOp = str  # one of: = != < <= > >=

_OP_SPELLINGS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal``."""

    column: str
    op: CompareOp
    value: Value

    def __post_init__(self) -> None:
        if self.op not in _OP_SPELLINGS:
            raise SqlUnsupportedError(
                f"bad comparison operator {self.op!r}")

    def sql(self) -> str:
        return f"{self.column} {self.op} {_render_literal(self.value)}"


@dataclass(frozen=True)
class Between:
    """``column BETWEEN lo AND hi`` (inclusive both ends)."""

    column: str
    lo: Value
    hi: Value

    def sql(self) -> str:
        return (f"{self.column} BETWEEN {_render_literal(self.lo)} "
                f"AND {_render_literal(self.hi)}")


Predicate = Union[Comparison, Between]


@dataclass(frozen=True)
class Conjunction:
    """AND of simple predicates (the only boolean structure supported)."""

    predicates: Tuple[Predicate, ...]

    def sql(self) -> str:
        return " AND ".join(p.sql() for p in self.predicates)

    @property
    def columns(self) -> List[str]:
        return [p.column for p in self.predicates]


AGGREGATE_FUNCS = ("COUNT", "MIN", "MAX", "SUM", "AVG")


@dataclass(frozen=True)
class Aggregate:
    """``FUNC(column)`` or ``COUNT(*)`` (column is None)."""

    func: str
    column: Optional[str]

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise SqlUnsupportedError(
                f"bad aggregate function {self.func!r}")
        if self.column is None and self.func != "COUNT":
            raise SqlUnsupportedError(
                f"{self.func}(*) is not valid SQL")

    def sql(self) -> str:
        return f"{self.func}({self.column or '*'})"


@dataclass(frozen=True)
class OrderBy:
    """``ORDER BY column [ASC|DESC]`` (single column)."""

    column: str
    descending: bool = False

    def sql(self) -> str:
        return (f"ORDER BY {self.column}"
                f"{' DESC' if self.descending else ''}")


@dataclass(frozen=True)
class SelectStmt:
    """``SELECT cols|aggs FROM table [WHERE conj] [GROUP BY col]
    [ORDER BY col] [LIMIT n]``.

    Either ``columns`` (``("*",)`` means all) or ``aggregates`` is
    populated, never both; with GROUP BY the output rows are
    ``(group_value, *aggregates)``.
    """

    table: str
    columns: Tuple[str, ...] = ()
    where: Optional[Conjunction] = None
    limit: Optional[int] = None
    aggregates: Tuple[Aggregate, ...] = ()
    order_by: Optional[OrderBy] = None
    group_by: Optional[str] = None

    def sql(self) -> str:
        if self.aggregates:
            items = []
            if self.group_by is not None:
                items.append(self.group_by)
            items.extend(a.sql() for a in self.aggregates)
            select_list = ", ".join(items)
        else:
            select_list = ", ".join(self.columns)
        parts = [f"SELECT {select_list} FROM {self.table}"]
        if self.where is not None:
            parts.append(f"WHERE {self.where.sql()}")
        if self.group_by is not None:
            parts.append(f"GROUP BY {self.group_by}")
        if self.order_by is not None:
            parts.append(self.order_by.sql())
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True)
class InsertStmt:
    """``INSERT INTO table (cols) VALUES (...), (...)``."""

    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Value, ...], ...]

    def sql(self) -> str:
        values = ", ".join(
            "(" + ", ".join(_render_literal(v) for v in row) + ")"
            for row in self.rows)
        return (f"INSERT INTO {self.table} "
                f"({', '.join(self.columns)}) VALUES {values}")


@dataclass(frozen=True)
class UpdateStmt:
    """``UPDATE table SET col = lit, ... [WHERE conj]``."""

    table: str
    assignments: Tuple[Tuple[str, Value], ...]
    where: Optional[Conjunction] = None

    def sql(self) -> str:
        sets = ", ".join(f"{c} = {_render_literal(v)}"
                         for c, v in self.assignments)
        out = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            out += f" WHERE {self.where.sql()}"
        return out


@dataclass(frozen=True)
class DeleteStmt:
    """``DELETE FROM table [WHERE conj]``."""

    table: str
    where: Optional[Conjunction] = None

    def sql(self) -> str:
        out = f"DELETE FROM {self.table}"
        if self.where is not None:
            out += f" WHERE {self.where.sql()}"
        return out


@dataclass(frozen=True)
class CreateTableStmt:
    """``CREATE TABLE name (col TYPE, ...)``."""

    table: str
    columns: Tuple[Tuple[str, str], ...]  # (name, type spelling)

    def sql(self) -> str:
        cols = ", ".join(f"{n} {t}" for n, t in self.columns)
        return f"CREATE TABLE {self.table} ({cols})"


@dataclass(frozen=True)
class CreateIndexStmt:
    """``CREATE INDEX name ON table (cols)``."""

    name: str
    table: str
    columns: Tuple[str, ...]

    def sql(self) -> str:
        return (f"CREATE INDEX {self.name} ON {self.table} "
                f"({', '.join(self.columns)})")


@dataclass(frozen=True)
class DropIndexStmt:
    """``DROP INDEX name``."""

    name: str

    def sql(self) -> str:
        return f"DROP INDEX {self.name}"


@dataclass(frozen=True)
class DropTableStmt:
    """``DROP TABLE name``."""

    table: str

    def sql(self) -> str:
        return f"DROP TABLE {self.table}"


Statement = Union[SelectStmt, InsertStmt, UpdateStmt, DeleteStmt,
                  CreateTableStmt, CreateIndexStmt, DropIndexStmt,
                  DropTableStmt]


def _render_literal(value: Value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)

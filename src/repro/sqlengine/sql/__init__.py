"""SQL front end: lexer, parser, and AST for the supported subset."""

from .ast import (Between, Comparison, Conjunction, CreateIndexStmt,
                  CreateTableStmt, DeleteStmt, DropIndexStmt, DropTableStmt,
                  InsertStmt, SelectStmt, Statement, UpdateStmt)
from .lexer import Token, tokenize
from .parser import parse

__all__ = [
    "Between", "Comparison", "Conjunction", "CreateIndexStmt",
    "CreateTableStmt", "DeleteStmt", "DropIndexStmt", "DropTableStmt",
    "InsertStmt", "SelectStmt", "Statement", "UpdateStmt",
    "Token", "tokenize", "parse",
]

"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ...errors import SqlSyntaxError

KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "AND", "BETWEEN", "LIMIT",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "DROP", "TABLE", "INDEX", "ON",
    "ORDER", "BY", "ASC", "DESC", "GROUP",
})

SYMBOLS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", "*", ";")


@dataclass(frozen=True)
class Token:
    """A lexical token.

    Attributes:
        kind: one of KEYWORD, IDENT, NUMBER, STRING, SYMBOL, EOF.
        text: the token's canonical text (keywords upper-cased,
            ``<>`` normalized to ``!=``).
        position: character offset in the source.
    """

    kind: str
    text: str
    position: int


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` on bad input."""
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token("KEYWORD", upper, start)
            else:
                yield Token("IDENT", word, start)
            continue
        if ch.isdigit() or (ch in "+-" and i + 1 < n and
                            sql[i + 1].isdigit()):
            start = i
            if ch in "+-":
                i += 1
            while i < n and (sql[i].isdigit() or sql[i] == "."):
                i += 1
            if i < n and sql[i] in "eE":
                i += 1
                if i < n and sql[i] in "+-":
                    i += 1
                while i < n and sql[i].isdigit():
                    i += 1
            yield Token("NUMBER", sql[start:i], start)
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: List[str] = []
            while True:
                if i >= n:
                    raise SqlSyntaxError("unterminated string literal",
                                         start)
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(sql[i])
                i += 1
            yield Token("STRING", "".join(chunks), start)
            continue
        matched = False
        for symbol in SYMBOLS:
            if sql.startswith(symbol, i):
                canonical = "!=" if symbol == "<>" else symbol
                yield Token("SYMBOL", canonical, i)
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    yield Token("EOF", "", n)

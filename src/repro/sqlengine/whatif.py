"""What-if optimization: costing statements under hypothetical designs.

This is the engine's equivalent of SQL Server's hypothetical indexes /
PostgreSQL's HypoPG: an index that exists only as statistics-derived
geometry. Because the planner works purely on ``(IndexDef,
IndexGeometry)`` pairs, hypothetical and materialized indexes cost
identically — the what-if estimate for a configuration equals what the
planner would charge if the configuration were deployed.

The :class:`WhatIfOptimizer` provides the three quantities the paper's
problem definition needs:

* ``EXEC(S, C)`` — :meth:`estimate_statement`,
* ``TRANS(C1, C2)`` — :meth:`transition_cost`,
* ``SIZE(C)`` — :meth:`configuration_size_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..errors import CatalogError, SqlUnsupportedError
from .costmodel import (Cost, CostParams, ZERO_COST, cost_build_index,
                        cost_build_view, cost_drop_index, cost_insert)
from .index import IndexDef, IndexGeometry, structure_sort_key
from .views import ViewDef, ViewGeometry
from .planner import (AccessPath, QueryInfo, analyze_select,
                      choose_access_path, total_selectivity)
from .schema import TableSchema
from .sql.ast import (DeleteStmt, InsertStmt, SelectStmt, Statement,
                      UpdateStmt)
from .stats import TableStats


@dataclass(frozen=True)
class PlanEstimate:
    """Outcome of a what-if costing call."""

    cost: Cost
    access_path: Optional[AccessPath]
    units: float

    def __float__(self) -> float:
        return self.units


class WhatIfOptimizer:
    """Costs statements under arbitrary (hypothetical) configurations.

    Args:
        schemas: table name -> schema.
        stats: table name -> current statistics.
        params: cost-model weights.
    """

    def __init__(self, schemas: Mapping[str, TableSchema],
                 stats: Mapping[str, TableStats],
                 params: Optional[CostParams] = None):
        self._schemas = dict(schemas)
        self._stats = dict(stats)
        self.params = params or CostParams()
        self._geometry_cache: Dict[Tuple[IndexDef, int], IndexGeometry] = {}
        self._analyze_cache: Dict[SelectStmt, QueryInfo] = {}

    # ------------------------------------------------------------------
    # EXEC
    # ------------------------------------------------------------------

    def estimate_statement(self, stmt: Statement,
                           config: Iterable[IndexDef]) -> PlanEstimate:
        """Estimate the execution cost of ``stmt`` under ``config``."""
        config = frozenset(config)
        if isinstance(stmt, SelectStmt):
            return self._estimate_select(stmt, config)
        if isinstance(stmt, InsertStmt):
            return self._estimate_insert(stmt, config)
        if isinstance(stmt, (UpdateStmt, DeleteStmt)):
            return self._estimate_write_with_where(stmt, config)
        raise SqlUnsupportedError(
            f"what-if costing does not support {type(stmt).__name__}")

    def _estimate_select(self, stmt: SelectStmt,
                         config: FrozenSet[IndexDef]) -> PlanEstimate:
        info = self._analyze(stmt)
        stats = self._stats_for(stmt.table)
        indexes, views = self._geometries(stmt.table, config)
        path = choose_access_path(info, stats, indexes, self.params,
                                  views=views)
        return PlanEstimate(cost=path.cost, access_path=path,
                            units=path.cost.total(self.params))

    def _estimate_insert(self, stmt: InsertStmt,
                         config: FrozenSet[IndexDef]) -> PlanEstimate:
        stats = self._stats_for(stmt.table)
        n_indexes = sum(1 for d in config if d.table == stmt.table)
        one = cost_insert(stats, n_indexes, self.params)
        cost = Cost(one.page_reads * len(stmt.rows),
                    one.page_writes * len(stmt.rows),
                    one.cpu_units * len(stmt.rows))
        return PlanEstimate(cost=cost, access_path=None,
                            units=cost.total(self.params))

    def _estimate_write_with_where(self, stmt, config) -> PlanEstimate:
        """UPDATE/DELETE: locate rows like a SELECT *, then write."""
        schema = self._schema_for(stmt.table)
        probe = SelectStmt(table=stmt.table,
                           columns=tuple(schema.column_names),
                           where=stmt.where)
        info = self._analyze(probe)
        stats = self._stats_for(stmt.table)
        indexes, views = self._geometries(stmt.table, config)
        path = choose_access_path(info, stats, indexes, self.params,
                                  views=views)
        affected = stats.nrows * total_selectivity(info, stats)
        n_indexes = sum(1 for d in config if d.table == stmt.table)
        write = Cost(page_writes=affected * (1.0 + n_indexes),
                     cpu_units=affected * self.params.cpu_tuple_cost *
                     (1 + n_indexes))
        cost = path.cost + write
        return PlanEstimate(cost=cost, access_path=path,
                            units=cost.total(self.params))

    # ------------------------------------------------------------------
    # TRANS and SIZE
    # ------------------------------------------------------------------

    def transition_cost(self, old_config: Iterable[IndexDef],
                        new_config: Iterable[IndexDef]) -> Cost:
        """Cost of changing the physical design: build what's new,
        drop what's gone."""
        old, new = frozenset(old_config), frozenset(new_config)
        cost = ZERO_COST
        for definition in sorted(new - old, key=structure_sort_key):
            stats = self._stats_for(definition.table)
            geometry = self._geometry(definition)
            if isinstance(definition, ViewDef):
                cost = cost + cost_build_view(
                    stats, geometry.n_pages, self.params)
            else:
                cost = cost + cost_build_index(stats, geometry,
                                               self.params)
        for _definition in sorted(old - new, key=structure_sort_key):
            cost = cost + cost_drop_index(self.params)
        return cost

    def transition_units(self, old_config: Iterable[IndexDef],
                         new_config: Iterable[IndexDef]) -> float:
        return self.transition_cost(old_config, new_config).total(
            self.params)

    def index_size_bytes(self, definition: IndexDef) -> int:
        return self._geometry(definition).size_bytes

    def configuration_size_bytes(self,
                                 config: Iterable[IndexDef]) -> int:
        return sum(self.index_size_bytes(d) for d in frozenset(config))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def refresh_stats(self, stats: Mapping[str, TableStats]) -> None:
        """Swap in new statistics (invalidates geometry caches)."""
        self._stats = dict(stats)
        self._geometry_cache.clear()

    def _schema_for(self, table: str) -> TableSchema:
        try:
            return self._schemas[table]
        except KeyError:
            raise CatalogError(f"unknown table {table!r}") from None

    def _stats_for(self, table: str) -> TableStats:
        try:
            return self._stats[table]
        except KeyError:
            raise CatalogError(
                f"no statistics for table {table!r}") from None

    def _analyze(self, stmt: SelectStmt) -> QueryInfo:
        info = self._analyze_cache.get(stmt)
        if info is None:
            info = analyze_select(stmt, self._schema_for(stmt.table))
            self._analyze_cache[stmt] = info
        return info

    def _geometry(self, definition):
        stats = self._stats_for(definition.table)
        key = (definition, stats.nrows)
        geometry = self._geometry_cache.get(key)
        if geometry is None:
            schema = self._schema_for(definition.table)
            if isinstance(definition, ViewDef):
                geometry = ViewGeometry.compute(
                    schema, definition.columns, stats.nrows)
            else:
                geometry = IndexGeometry.compute(
                    schema, definition.columns, stats.nrows)
            self._geometry_cache[key] = geometry
        return geometry

    def _geometries(self, table: str, config: FrozenSet[IndexDef]):
        """Split a configuration into (index pairs, view pairs)."""
        indexes: List[Tuple[IndexDef, IndexGeometry]] = []
        views: List[Tuple[ViewDef, ViewGeometry]] = []
        for definition in sorted(config, key=structure_sort_key):
            if definition.table != table:
                continue
            if isinstance(definition, ViewDef):
                views.append((definition, self._geometry(definition)))
            else:
                indexes.append((definition,
                                self._geometry(definition)))
        return indexes, views

"""What-if optimization: costing statements under hypothetical designs.

This is the engine's equivalent of SQL Server's hypothetical indexes /
PostgreSQL's HypoPG: an index that exists only as statistics-derived
geometry. A hypothetical structure is pure *catalog substitution*: the
planner is handed ``(IndexDef, IndexGeometry)`` pairs and realizes the
same :mod:`~repro.sqlengine.plan` operator trees it would for deployed
structures, costed by the trees' own estimates. The what-if estimate
for a configuration is therefore the cost of the *literal plan object*
the executor would run if the configuration were deployed — the
``planidentity`` verify check asserts the two trees compare equal.

The :class:`WhatIfOptimizer` provides the three quantities the paper's
problem definition needs:

* ``EXEC(S, C)`` — :meth:`estimate_statement`,
* ``TRANS(C1, C2)`` — :meth:`transition_cost`,
* ``SIZE(C)`` — :meth:`configuration_size_bytes`.

Batched consumers (the :class:`~repro.core.costservice.CostService`)
additionally use the *template* entry points — statements are reduced
to a canonical :class:`StatementTemplate` whose key folds predicate
constants into the selectivities they induce; two statements with equal
template keys receive identical what-if estimates, so each template is
estimated once per configuration instead of once per statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..errors import CatalogError, SqlUnsupportedError
from .costmodel import (Cost, CostParams, ZERO_COST, cost_build_index,
                        cost_build_view, cost_drop_index,
                        cost_full_scan, cost_insert, cost_sort)
from .index import IndexDef, IndexGeometry, structure_sort_key
from .plan import PlanNode
from .views import ViewDef, ViewGeometry
from .planner import (AccessPath, QueryInfo, analyze_select,
                      choose_access_path, relevant_structures,
                      total_selectivity)
from .schema import TableSchema
from .shm_stats import SharedStatsBlock, SharedStatsHandle, attach_stats, \
    publish_stats
from .sql.ast import (DeleteStmt, InsertStmt, SelectStmt, Statement,
                      UpdateStmt)
from .stats import TableStats


@dataclass(frozen=True)
class CatalogSnapshot:
    """Everything a replica :class:`WhatIfOptimizer` needs.

    Parallel matrix builds ship one snapshot per worker-pool
    *lifetime* (not per batch): schemas, statistics, cost params, and
    the stats epoch the snapshot was taken under. Replicas are
    deterministic in the snapshot, so worker estimates are
    bit-identical to the parent optimizer's for as long as the epoch
    matches — the cost service tears the pool down on epoch bumps.

    Statistics travel one of two ways. The pickled path carries them
    inline in ``stats``. The zero-copy path
    (:meth:`WhatIfOptimizer.shared_catalog_snapshot`) leaves ``stats``
    empty and sets ``stats_handle`` to a
    :class:`~repro.sqlengine.shm_stats.SharedStatsHandle`;
    :meth:`WhatIfOptimizer.from_snapshot` then attaches read-only
    histogram views onto the publisher's shared-memory block instead
    of re-deserializing anything. Both paths produce bit-identical
    estimates.
    """

    schemas: Mapping[str, TableSchema]
    stats: Mapping[str, TableStats]
    params: CostParams
    stats_epoch: int
    #: Set on zero-copy snapshots: the shared-memory descriptor the
    #: replica attaches instead of reading ``stats``.
    stats_handle: Optional["SharedStatsHandle"] = None


@dataclass(frozen=True)
class PlanEstimate:
    """Outcome of a what-if costing call.

    ``plan`` is the physical-plan tree the estimate was read off —
    structurally equal to the tree the executor would run under the
    same configuration (``None`` for statements costed without a plan,
    e.g. INSERT).
    """

    cost: Cost
    access_path: Optional[AccessPath]
    units: float
    plan: Optional[PlanNode] = None

    def __float__(self) -> float:
        return self.units


@dataclass(frozen=True)
class StatementTemplate:
    """Canonical cost shape of a statement.

    Two statements share a template exactly when the cost model cannot
    tell them apart: same statement kind, table, selected columns,
    aggregates/ordering/grouping, and — the folding step — the same
    per-column predicate *selectivities*. Constants themselves are
    discarded; only the selectivity each predicate induces under the
    current statistics is kept (optionally quantized into buckets).
    With exact selectivities (the default), estimating the
    representative statement yields the bit-identical result every
    member of the template would get.

    Attributes:
        key: hashable signature (the dedup/cache key).
        representative: parsed AST of one member statement, used to
            actually run the estimate.
    """

    key: Tuple
    representative: Statement = field(compare=False, repr=False)


class WhatIfOptimizer:
    """Costs statements under arbitrary (hypothetical) configurations.

    Args:
        schemas: table name -> schema.
        stats: table name -> current statistics.
        params: cost-model weights.
    """

    def __init__(self, schemas: Mapping[str, TableSchema],
                 stats: Mapping[str, TableStats],
                 params: Optional[CostParams] = None,
                 fault_injector=None):
        self._schemas = dict(schemas)
        self._stats = dict(stats)
        self.params = params or CostParams()
        #: Optional :class:`~repro.faults.injector.FaultInjector`;
        #: when set, every estimate entry is an ``estimate`` fault
        #: site (raising :class:`EstimationUnavailable`).
        self.fault_injector = fault_injector
        #: Shared-memory attachment backing this optimizer's
        #: statistics, when built from a zero-copy snapshot; pinned
        #: here so the mapping outlives every estimate.
        self._shm_attachment = None
        self._geometry_cache: Dict[Tuple[IndexDef, int], IndexGeometry] = {}
        self._analyze_cache: Dict[SelectStmt, QueryInfo] = {}
        #: Bumped whenever statistics change; template keys computed
        #: under an older epoch are stale (selectivities moved).
        self.stats_epoch = 0

    # ------------------------------------------------------------------
    # EXEC
    # ------------------------------------------------------------------

    def estimate_statement(self, stmt: Statement,
                           config: Iterable[IndexDef]) -> PlanEstimate:
        """Estimate the execution cost of ``stmt`` under ``config``.

        Raises :class:`~repro.errors.EstimationUnavailable` when a
        fault injector is attached and fires at the ``estimate`` site
        (modelling what-if timeouts); callers degrade via
        :meth:`scan_upper_bound`.
        """
        if self.fault_injector is not None:
            self.fault_injector.on_estimate(
                getattr(stmt, "table", None))
        config = frozenset(config)
        if isinstance(stmt, SelectStmt):
            return self._estimate_select(stmt, config)
        if isinstance(stmt, InsertStmt):
            return self._estimate_insert(stmt, config)
        if isinstance(stmt, (UpdateStmt, DeleteStmt)):
            return self._estimate_write_with_where(stmt, config)
        raise SqlUnsupportedError(
            f"what-if costing does not support {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # templates (the batched-estimation entry point)
    # ------------------------------------------------------------------

    def statement_template(self, stmt: Statement,
                           selectivity_resolution: Optional[float] = None
                           ) -> StatementTemplate:
        """Reduce ``stmt`` to its :class:`StatementTemplate`.

        Args:
            stmt: the parsed statement.
            selectivity_resolution: when given, selectivities are
                quantized into buckets of this width before entering
                the key — coarser dedup at the price of exactness.
                ``None`` (default) keeps exact selectivities, which
                preserves bit-identical estimates within a template.
        """
        if isinstance(stmt, SelectStmt):
            key = ("select",
                   self._select_signature(stmt, selectivity_resolution))
            return StatementTemplate(key=key, representative=stmt)
        if isinstance(stmt, InsertStmt):
            # Row *values* never enter the insert cost model — only the
            # target table and the row count do.
            key = ("insert", stmt.table, len(stmt.rows))
            return StatementTemplate(key=key, representative=stmt)
        if isinstance(stmt, (UpdateStmt, DeleteStmt)):
            # Writes cost like a SELECT * probe plus a per-affected-row
            # write term; SET values are irrelevant, the WHERE shape is
            # everything.
            schema = self._schema_for(stmt.table)
            probe = SelectStmt(table=stmt.table,
                               columns=tuple(schema.column_names),
                               where=stmt.where)
            key = (type(stmt).__name__.lower(),
                   self._select_signature(probe, selectivity_resolution))
            return StatementTemplate(key=key, representative=stmt)
        raise SqlUnsupportedError(
            f"what-if costing does not support {type(stmt).__name__}")

    def estimate_template(self, template: StatementTemplate,
                          config: Iterable[IndexDef]) -> PlanEstimate:
        """Estimate one template's cost under ``config`` (by costing
        its representative statement)."""
        return self.estimate_statement(template.representative, config)

    # ------------------------------------------------------------------
    # relevance signatures (atomic cost decomposition)
    # ------------------------------------------------------------------

    def relevance_signature(self, template: StatementTemplate,
                            config: Iterable[IndexDef]) -> Tuple:
        """The part of ``config`` that can possibly affect the
        template's estimate, as a hashable signature.

        Contract: two configurations with equal signatures yield
        **bit-identical** :meth:`estimate_template` results, because
        the estimate reads only what the signature captures:

        * SELECT — the sorted subset of structures that can serve the
          statement (:func:`~repro.sqlengine.planner.
          structure_can_serve`); non-serving structures contribute no
          access path, so the planner's cheapest-path choice is a pure
          function of this subset (plus statistics). Compression is
          part of each structure's identity, so variants are distinct
          signature members automatically.
        * INSERT — the maintenance cost is a function of the on-table
          structures' count *and compression levels* (decode/encode
          surcharge), so the signature is the sorted multiset of
          levels; its length recovers the historical count.
        * UPDATE/DELETE — the serving subset of the SELECT-* probe
          (row location) plus the on-table level multiset (write
          maintenance).

        Signature-keyed caches therefore collapse the what-if work
        from O(templates x |C|) to O(templates x relevant subsets)
        without changing a single estimate.
        """
        stmt = template.representative
        structures = frozenset(config)
        if isinstance(stmt, SelectStmt):
            info = self._analyze(stmt)
            return ("select", relevant_structures(info, structures))
        if isinstance(stmt, InsertStmt):
            return ("insert", stmt.table,
                    _maintenance_levels(structures, stmt.table))
        if isinstance(stmt, (UpdateStmt, DeleteStmt)):
            schema = self._schema_for(stmt.table)
            probe = SelectStmt(table=stmt.table,
                               columns=tuple(schema.column_names),
                               where=stmt.where)
            info = self._analyze(probe)
            return ("write", relevant_structures(info, structures),
                    _maintenance_levels(structures, stmt.table))
        raise SqlUnsupportedError(
            f"what-if costing does not support {type(stmt).__name__}")

    def catalog_snapshot(self) -> CatalogSnapshot:
        """This optimizer's :class:`CatalogSnapshot`. Parallel matrix
        builds ship it to worker processes once per pool lifetime and
        rebuild a replica there (:meth:`from_snapshot`); the replica
        is deterministic in the snapshot, so worker estimates are
        bit-identical to this optimizer's."""
        return CatalogSnapshot(schemas=dict(self._schemas),
                               stats=dict(self._stats),
                               params=self.params,
                               stats_epoch=self.stats_epoch)

    def shared_catalog_snapshot(self) -> Tuple[CatalogSnapshot,
                                               Optional[SharedStatsBlock]]:
        """A zero-copy snapshot: histograms published into a
        shared-memory block, the snapshot carrying only the block's
        handle (plus schemas/params/epoch). Returns ``(snapshot,
        block)``; the caller owns the block's lifetime
        (:meth:`~repro.sqlengine.shm_stats.SharedStatsBlock.close`).

        Falls back to ``(catalog_snapshot(), None)`` — the pickled
        path — when shared memory is unavailable or there is nothing
        worth sharing, so callers need no platform branch.
        """
        block = publish_stats(self._stats)
        if block is None:
            return self.catalog_snapshot(), None
        snapshot = CatalogSnapshot(schemas=dict(self._schemas),
                                   stats={},
                                   params=self.params,
                                   stats_epoch=self.stats_epoch,
                                   stats_handle=block.handle)
        return snapshot, block

    @classmethod
    def from_snapshot(cls, snapshot: CatalogSnapshot
                      ) -> "WhatIfOptimizer":
        """Rebuild a replica optimizer from a snapshot (pool-worker
        initialization). Zero-copy snapshots attach read-only views
        onto the publisher's shared-memory block; the attachment is
        pinned on the replica so the mapping lives exactly as long as
        the replica does."""
        stats = snapshot.stats
        attachment = None
        if snapshot.stats_handle is not None:
            attachment = attach_stats(snapshot.stats_handle)
            stats = attachment.stats
        replica = cls(snapshot.schemas, stats, snapshot.params)
        replica.stats_epoch = snapshot.stats_epoch
        replica._shm_attachment = attachment
        return replica

    def _select_signature(self, stmt: SelectStmt,
                          resolution: Optional[float]) -> Tuple:
        """The selectivity-folded signature of a SELECT.

        Every quantity the planner derives from the statement is a
        function of this tuple (plus table statistics): output columns,
        aggregate/order/group shape, and — per predicate column — the
        constraint kinds with their selectivities, in the exact order
        ``predicate_selectivity`` multiplies them.
        """
        info = self._analyze(stmt)
        stats = self._stats_for(stmt.table)

        def fold(selectivity: float) -> float:
            if resolution is None or resolution <= 0:
                return selectivity
            return round(selectivity / resolution) * resolution

        columns = sorted(set(info.eq_predicates)
                         | set(info.range_predicates)
                         | {p.column for p in info.neq_predicates})
        predicate_parts = []
        for column in columns:
            parts: List[Tuple[str, float]] = []
            column_stats = stats.column(column)
            if column in info.eq_predicates:
                parts.append(("eq", fold(column_stats.selectivity_eq(
                    info.eq_predicates[column]))))
            if column in info.range_predicates:
                spec = info.range_predicates[column]
                parts.append(("range", fold(
                    column_stats.selectivity_range(
                        spec.lo, spec.hi, spec.lo_inclusive,
                        spec.hi_inclusive))))
            for predicate in info.neq_predicates:
                if predicate.column == column:
                    parts.append(("neq", fold(
                        column_stats.selectivity_eq(predicate.value))))
            predicate_parts.append((column, tuple(parts)))
        order = None
        if info.order_by is not None:
            order = (info.order_by.column, info.order_by.descending)
        return (stmt.table, info.select_columns, info.aggregates,
                info.group_by, order, info.limit, info.unsatisfiable,
                tuple(predicate_parts))

    def _estimate_select(self, stmt: SelectStmt,
                         config: FrozenSet[IndexDef]) -> PlanEstimate:
        info = self._analyze(stmt)
        stats = self._stats_for(stmt.table)
        indexes, views = self._geometries(stmt.table, config)
        path = choose_access_path(info, stats, indexes, self.params,
                                  views=views)
        return PlanEstimate(cost=path.cost, access_path=path,
                            units=path.cost.total(self.params),
                            plan=path.plan)

    def _estimate_insert(self, stmt: InsertStmt,
                         config: FrozenSet[IndexDef]) -> PlanEstimate:
        stats = self._stats_for(stmt.table)
        n_indexes = sum(1 for d in config if d.table == stmt.table)
        surcharge = _maintenance_surcharge(config, stmt.table)
        one = cost_insert(stats, n_indexes, self.params, surcharge)
        cost = Cost(one.page_reads * len(stmt.rows),
                    one.page_writes * len(stmt.rows),
                    one.cpu_units * len(stmt.rows))
        return PlanEstimate(cost=cost, access_path=None,
                            units=cost.total(self.params))

    def _estimate_write_with_where(self, stmt, config) -> PlanEstimate:
        """UPDATE/DELETE: locate rows like a SELECT *, then write."""
        schema = self._schema_for(stmt.table)
        probe = SelectStmt(table=stmt.table,
                           columns=tuple(schema.column_names),
                           where=stmt.where)
        info = self._analyze(probe)
        stats = self._stats_for(stmt.table)
        indexes, views = self._geometries(stmt.table, config)
        path = choose_access_path(info, stats, indexes, self.params,
                                  views=views)
        affected = stats.nrows * total_selectivity(info, stats)
        n_indexes = sum(1 for d in config if d.table == stmt.table)
        surcharge = _maintenance_surcharge(config, stmt.table)
        # The surcharge rides as an additive term (exactly 0.0 for an
        # all-NONE design) so the uncompressed write estimate is
        # bitwise the pre-compression one.
        write = Cost(page_writes=affected * (1.0 + n_indexes),
                     cpu_units=affected * self.params.cpu_tuple_cost *
                     (1 + n_indexes) +
                     affected * self.params.cpu_tuple_cost * surcharge)
        cost = path.cost + write
        return PlanEstimate(cost=cost, access_path=path,
                            units=cost.total(self.params),
                            plan=path.plan)

    # ------------------------------------------------------------------
    # degraded estimation
    # ------------------------------------------------------------------

    def scan_upper_bound(self, stmt: Statement,
                         config: Iterable[IndexDef] = ()) -> float:
        """A pessimistic cost bound computed from statistics alone.

        The last rung of the degradation ladder: when real estimation
        is unavailable, charge the statement as if no index helped —
        a full heap scan (plus a full sort for ordered/grouped
        queries, plus worst-case write maintenance for DML). Never
        consults the fault injector and never underestimates the
        planner's choice, so degraded consumers err toward caution.
        """
        stats = self._stats_for(
            getattr(stmt, "table", None) or "")
        if isinstance(stmt, SelectStmt):
            cost = cost_full_scan(stats, self.params)
            if stmt.order_by is not None or stmt.group_by is not None:
                cost = cost + cost_sort(stats.nrows, self.params)
            return cost.total(self.params)
        structures = frozenset(config)
        n_indexes = sum(1 for d in structures
                        if d.table == stmt.table)
        surcharge = _maintenance_surcharge(structures, stmt.table)
        if isinstance(stmt, InsertStmt):
            one = cost_insert(stats, n_indexes, self.params,
                              surcharge)
            cost = Cost(one.page_reads * len(stmt.rows),
                        one.page_writes * len(stmt.rows),
                        one.cpu_units * len(stmt.rows))
            return cost.total(self.params)
        if isinstance(stmt, (UpdateStmt, DeleteStmt)):
            # Worst case: every row qualifies and every structure is
            # maintained (compressed ones at their decode surcharge).
            cost = cost_full_scan(stats, self.params) + Cost(
                page_writes=stats.nrows * (1.0 + n_indexes),
                cpu_units=stats.nrows * self.params.cpu_tuple_cost *
                (1 + n_indexes) +
                stats.nrows * self.params.cpu_tuple_cost * surcharge)
            return cost.total(self.params)
        raise SqlUnsupportedError(
            f"no upper bound for {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # TRANS and SIZE
    # ------------------------------------------------------------------

    def transition_cost(self, old_config: Iterable[IndexDef],
                        new_config: Iterable[IndexDef]) -> Cost:
        """Cost of changing the physical design: build what's new,
        drop what's gone."""
        old, new = frozenset(old_config), frozenset(new_config)
        cost = ZERO_COST
        for definition in sorted(new - old, key=structure_sort_key):
            stats = self._stats_for(definition.table)
            geometry = self._geometry(definition)
            if isinstance(definition, ViewDef):
                cost = cost + cost_build_view(
                    stats, geometry.n_pages, self.params,
                    geometry.build_cpu_factor)
            else:
                cost = cost + cost_build_index(stats, geometry,
                                               self.params)
        for _definition in sorted(old - new, key=structure_sort_key):
            cost = cost + cost_drop_index(self.params)
        return cost

    def transition_units(self, old_config: Iterable[IndexDef],
                         new_config: Iterable[IndexDef]) -> float:
        return self.transition_cost(old_config, new_config).total(
            self.params)

    def index_size_bytes(self, definition: IndexDef) -> int:
        return self._geometry(definition).size_bytes

    def configuration_size_bytes(self,
                                 config: Iterable[IndexDef]) -> int:
        return sum(self.index_size_bytes(d) for d in frozenset(config))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def refresh_stats(self, stats: Mapping[str, TableStats]) -> None:
        """Swap in new statistics (invalidates geometry caches and
        bumps the stats epoch so cached templates go stale)."""
        self._stats = dict(stats)
        self._geometry_cache.clear()
        self.stats_epoch += 1

    def _schema_for(self, table: str) -> TableSchema:
        try:
            return self._schemas[table]
        except KeyError:
            raise CatalogError(f"unknown table {table!r}") from None

    def _stats_for(self, table: str) -> TableStats:
        try:
            return self._stats[table]
        except KeyError:
            raise CatalogError(
                f"no statistics for table {table!r}") from None

    def _analyze(self, stmt: SelectStmt) -> QueryInfo:
        info = self._analyze_cache.get(stmt)
        if info is None:
            info = analyze_select(stmt, self._schema_for(stmt.table))
            self._analyze_cache[stmt] = info
        return info

    def _geometry(self, definition):
        stats = self._stats_for(definition.table)
        key = (definition, stats.nrows)
        geometry = self._geometry_cache.get(key)
        if geometry is None:
            schema = self._schema_for(definition.table)
            if isinstance(definition, ViewDef):
                geometry = ViewGeometry.compute(
                    schema, definition.columns, stats.nrows,
                    definition.compression)
            else:
                geometry = IndexGeometry.compute(
                    schema, definition.columns, stats.nrows,
                    definition.compression)
            self._geometry_cache[key] = geometry
        return geometry

    @staticmethod
    def maintenance_surcharge(config: Iterable[IndexDef],
                              table: str) -> float:
        """Summed compression CPU surcharge of ``table``'s structures
        (``0.0`` for an all-NONE design). Public mirror of the term
        the insert/write estimates add."""
        return _maintenance_surcharge(frozenset(config), table)

    def _geometries(self, table: str, config: FrozenSet[IndexDef]):
        """Split a configuration into (index pairs, view pairs)."""
        indexes: List[Tuple[IndexDef, IndexGeometry]] = []
        views: List[Tuple[ViewDef, ViewGeometry]] = []
        for definition in sorted(config, key=structure_sort_key):
            if definition.table != table:
                continue
            if isinstance(definition, ViewDef):
                views.append((definition, self._geometry(definition)))
            else:
                indexes.append((definition,
                                self._geometry(definition)))
        return indexes, views


def _maintenance_surcharge(structures: FrozenSet, table: str) -> float:
    """``sum(cpu_factor(s) - 1)`` over ``table``'s structures.

    Summed in :func:`structure_sort_key` order so the float fold is
    deterministic across processes (worker replicas must reproduce the
    parent's estimates bit for bit); exactly ``0.0`` when every
    structure is at level NONE.
    """
    surcharge = 0.0
    for definition in sorted(structures, key=structure_sort_key):
        if definition.table == table:
            surcharge += definition.compression.cpu_factor - 1.0
    return surcharge


def _maintenance_levels(structures: FrozenSet, table: str) -> Tuple:
    """Sorted multiset of compression levels on ``table`` — the
    signature of everything the insert/write maintenance term reads
    (its length is the historical structure count)."""
    return tuple(sorted(int(d.compression) for d in structures
                        if d.table == table))

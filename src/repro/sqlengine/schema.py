"""Table schemas and the system catalog's logical definitions.

A :class:`TableSchema` is an ordered list of typed columns plus derived
page-geometry facts (row width, rows per page). The widths are the
inputs the cost model uses everywhere, so they live here, next to the
schema, rather than being re-derived ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import SchemaError
from .types import ColumnType

#: Per-row storage overhead in bytes (row header + null bitmap), modeled
#: after typical slotted-page layouts.
ROW_OVERHEAD_BYTES = 8

#: Width of a row identifier (page number + slot) as stored in indexes.
RID_BYTES = 8


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise SchemaError(f"invalid column name {self.name!r}")

    @property
    def byte_width(self) -> int:
        return self.ctype.byte_width

    def __str__(self) -> str:
        return f"{self.name} {self.ctype.value}"


@dataclass(frozen=True)
class TableSchema:
    """An ordered, immutable description of a table's columns."""

    name: str
    columns: Tuple[Column, ...]
    _by_name: Dict[str, Column] = field(
        default=None, repr=False, compare=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise SchemaError(f"invalid table name {self.name!r}")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} needs at least 1 column")
        seen = set()
        for column in self.columns:
            if column.name in seen:
                raise SchemaError(
                    f"duplicate column {column.name!r} in {self.name!r}")
            seen.add(column.name)
        object.__setattr__(
            self, "_by_name", {c.name: c for c in self.columns})

    @classmethod
    def build(cls, name: str,
              columns: Iterable[Tuple[str, ColumnType]]) -> "TableSchema":
        """Convenience constructor from ``(name, type)`` pairs."""
        return cls(name, tuple(Column(n, t) for n, t in columns))

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column_index(self, name: str) -> int:
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    @property
    def row_width(self) -> int:
        """On-page width of one row, including per-row overhead."""
        return ROW_OVERHEAD_BYTES + sum(c.byte_width for c in self.columns)

    def width_of(self, column_names: Sequence[str]) -> int:
        """Combined byte width of the named columns (no row overhead)."""
        return sum(self.column(n).byte_width for n in column_names)

    def ddl(self) -> str:
        """Render the schema as a ``CREATE TABLE`` statement."""
        cols = ", ".join(str(c) for c in self.columns)
        return f"CREATE TABLE {self.name} ({cols})"

    def __str__(self) -> str:
        return self.ddl()

"""Plan execution with metered costs.

The executor runs the access path chosen by the planner against the
real storage structures (heap pages, B+-tree leaves) and meters every
page touch in the same cost units the what-if optimizer estimates with.
Scans and filters are vectorized over the column arrays; the page
accounting follows the row/page geometry, not the vectorization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PlanningError
from .buffer import BufferManager
from .costmodel import CostParams, MeteredCost
from .index import Index, IndexDef, structure_sort_key
from .planner import (AccessPath, QueryInfo, RangeSpec, analyze_select,
                      choose_access_path)
from .sql.ast import (DeleteStmt, InsertStmt, SelectStmt, UpdateStmt)
from .stats import TableStats
from .storage import HeapTable
from .types import Value


@dataclass
class QueryResult:
    """Rows plus the metered cost of producing them."""

    rows: List[Tuple[Value, ...]]
    metrics: MeteredCost
    access_path: Optional[AccessPath] = None

    def units(self, params: CostParams) -> float:
        return self.metrics.total(params)

    def __len__(self) -> int:
        return len(self.rows)


class Executor:
    """Executes statements against one table's physical structures.

    Args:
        table: the heap table.
        indexes: materialized indexes, keyed by definition.
        buffer_manager: shared pool for page charging.
        params: cost-model weights (metering scale).
    """

    def __init__(self, table: HeapTable, indexes: Dict[IndexDef, Index],
                 buffer_manager: BufferManager, params: CostParams,
                 views: Optional[Dict] = None):
        self.table = table
        self.indexes = indexes
        self.views = views or {}
        self.buffer_manager = buffer_manager
        self.params = params

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def execute_select(self, stmt: SelectStmt, stats: TableStats,
                       info: Optional[QueryInfo] = None) -> QueryResult:
        if info is None:
            info = analyze_select(stmt, self.table.schema)
        if info.unsatisfiable:
            # Contradictory conjunction: provably empty, no I/O needed
            # (real optimizers' "constant false" shortcut). A grouped
            # aggregate over nothing has no groups at all.
            rows = []
            if info.aggregates and info.group_by is None:
                rows = [_aggregate_rows(info, [])]
            return QueryResult(rows=rows, metrics=MeteredCost())
        shortcut = self._try_minmax_via_index(info)
        if shortcut is not None:
            return shortcut
        # Sorted candidate order: plan tie-breaking must not depend
        # on index-creation order (the what-if optimizer sorts too).
        pairs = [(d, self.indexes[d].geometry())
                 for d in sorted(self.indexes, key=structure_sort_key)]
        view_pairs = [(d, self.views[d].geometry())
                      for d in sorted(self.views,
                                      key=structure_sort_key)]
        path = choose_access_path(info, stats, pairs, self.params,
                                  views=view_pairs)
        metered = MeteredCost()
        if path.kind == "full_scan":
            rids = self._run_full_scan(info, metered)
            rids = self._order_heap_rids(rids, info, path, metered)
            rows = self._project_from_heap(rids, info, metered)
        elif path.kind == "view_scan":
            rids = self._run_view_scan(info, path, metered)
            rids = self._order_heap_rids(rids, info, path, metered)
            rows = self._project_from_heap(rids, info, metered)
        elif path.kind == "index_only_scan":
            rows = self._run_index_only(info, path, metered)
        else:
            rids, leaf_positions = self._run_index_seek(
                info, path, metered)
            if path.covering:
                index = self.indexes[path.index]
                cols, _ = index.leaf_arrays()
                leaf_positions = self._order_positions(
                    cols, leaf_positions, info, path, metered)
                out_cols = [cols[c][leaf_positions]
                            for c in info.select_columns]
                rows = _rows_from_columns(out_cols, len(leaf_positions))
            else:
                rids = self._order_heap_rids(rids, info, path, metered)
                rows = self._project_from_heap(rids, info, metered,
                                               charge_fetch=True)
        if info.aggregates:
            if info.group_by is not None:
                rows = _group_and_aggregate(info, rows)
            else:
                rows = [_aggregate_rows(info, rows)]
        if info.limit is not None:
            rows = rows[:info.limit]
        metered.rows_returned = len(rows)
        return QueryResult(rows=rows, metrics=metered, access_path=path)

    def _try_minmax_via_index(self, info: QueryInfo
                              ) -> Optional[QueryResult]:
        """Answer an unpredicated single MIN/MAX from an index's first
        or last key — one descent instead of a scan."""
        if len(info.aggregates) != 1 or info.predicate_columns:
            return None
        aggregate = info.aggregates[0]
        if aggregate.func not in ("MIN", "MAX") or \
                aggregate.column is None:
            return None
        for definition, index in self.indexes.items():
            if definition.columns[0] != aggregate.column:
                continue
            cols, rids = index.leaf_arrays()
            if not len(rids):
                break
            metered = MeteredCost()
            index.charge_descent()
            index.charge_leaf_pages(1)
            metered.add_reads(index.geometry().height + 1)
            metered.add_cpu(self.params.cpu_index_tuple_cost)
            data = cols[aggregate.column]
            value = data[0] if aggregate.func == "MIN" else data[-1]
            metered.rows_returned = 1
            return QueryResult(rows=[(_scalar(value),)],
                               metrics=metered)
        return None

    def _run_full_scan(self, info: QueryInfo,
                       metered: MeteredCost) -> np.ndarray:
        pages = self.table.scan_pages()
        metered.add_reads(pages)
        metered.add_cpu(self.table.nslots * self.params.cpu_tuple_cost)
        metered.rows_examined += self.table.nslots
        mask = self.table.valid_mask().copy()
        for column, value in info.eq_predicates.items():
            mask &= self.table.column_array(column) == value
        for column, spec in info.range_predicates.items():
            mask &= _range_mask(self.table.column_array(column), spec)
        for predicate in info.neq_predicates:
            mask &= (self.table.column_array(predicate.column)
                     != predicate.value)
        return np.nonzero(mask)[0]

    def _order_heap_rids(self, rids: np.ndarray, info: QueryInfo,
                         path: AccessPath,
                         metered: MeteredCost) -> np.ndarray:
        """Apply ORDER BY at the rid level (heap-backed paths)."""
        if info.order_by is None or len(rids) == 0:
            return rids
        if path.provides_order:
            return rids[::-1] if info.order_by.descending else rids
        values = self.table.column_array(info.order_by.column)[rids]
        order = np.argsort(values, kind="stable")
        if info.order_by.descending:
            order = order[::-1]
        metered.add_cpu(self.params.cpu_sort_factor * len(rids) *
                        max(1.0, np.log2(len(rids) + 1)))
        return rids[order]

    def _order_positions(self, cols, positions: np.ndarray,
                         info: QueryInfo, path: AccessPath,
                         metered: MeteredCost) -> np.ndarray:
        """Apply ORDER BY at the leaf-position level (covering seek)."""
        if info.order_by is None or len(positions) == 0:
            return positions
        if path.provides_order:
            return positions[::-1] if info.order_by.descending \
                else positions
        values = cols[info.order_by.column][positions]
        order = np.argsort(values, kind="stable")
        if info.order_by.descending:
            order = order[::-1]
        metered.add_cpu(self.params.cpu_sort_factor * len(positions) *
                        max(1.0, np.log2(len(positions) + 1)))
        return positions[order]

    def _run_view_scan(self, info: QueryInfo, path: AccessPath,
                       metered: MeteredCost) -> np.ndarray:
        """Scan a projection view: same predicate evaluation as a heap
        scan (the view shares row ids), charged at the view's narrower
        page geometry."""
        view = self.views[path.view]
        pages = view.charge_scan()
        metered.add_reads(pages)
        metered.add_cpu(self.table.nslots * self.params.cpu_tuple_cost)
        metered.rows_examined += self.table.nslots
        mask = self.table.valid_mask().copy()
        for column, value in info.eq_predicates.items():
            mask &= view.column_array(column) == value
        for column, spec in info.range_predicates.items():
            mask &= _range_mask(view.column_array(column), spec)
        for predicate in info.neq_predicates:
            mask &= (view.column_array(predicate.column)
                     != predicate.value)
        return np.nonzero(mask)[0]

    def _run_index_seek(self, info: QueryInfo, path: AccessPath,
                        metered: MeteredCost
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Returns ``(matching rids, their positions in the leaf
        mirror)`` after seek + in-key residual filtering."""
        index = self.indexes[path.index]
        cols, rids = index.leaf_arrays()
        lo, hi = 0, len(rids)
        # Narrow by the equality prefix, column by column; within an
        # equal prefix the next key column is sorted, so searchsorted
        # stays valid at each step.
        for column in index.definition.columns[:path.eq_prefix_len]:
            data = cols[column][lo:hi]
            value = info.eq_predicates[column]
            lo_off = int(np.searchsorted(data, value, side="left"))
            hi_off = int(np.searchsorted(data, value, side="right"))
            lo, hi = lo + lo_off, lo + hi_off
        if path.uses_range:
            column = index.definition.columns[path.eq_prefix_len]
            spec = info.range_predicates[column]
            data = cols[column][lo:hi]
            if spec.lo is not None:
                side = "left" if spec.lo_inclusive else "right"
                lo_off = int(np.searchsorted(data, spec.lo, side=side))
            else:
                lo_off = 0
            if spec.hi is not None:
                side = "right" if spec.hi_inclusive else "left"
                hi_off = int(np.searchsorted(data, spec.hi, side=side))
            else:
                hi_off = len(data)
            lo, hi = lo + lo_off, lo + hi_off
        n_entries = hi - lo
        index.charge_descent()
        pages = index.charge_leaf_pages(max(n_entries, 1))
        metered.add_reads(index.geometry().height + pages)
        metered.add_cpu(n_entries * self.params.cpu_index_tuple_cost)
        metered.rows_examined += n_entries
        if n_entries <= 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        selected = np.ones(n_entries, dtype=bool)
        # Residual predicates on other key columns filter entries
        # before any heap fetch; != predicates apply even to the seek
        # columns themselves (the seek bounds cannot express them).
        seek_columns = set(index.definition.columns[:path.eq_prefix_len])
        if path.uses_range:
            seek_columns.add(index.definition.columns[path.eq_prefix_len])
        for column in index.definition.columns:
            data = cols[column][lo:hi]
            for predicate in info.neq_predicates:
                if predicate.column == column:
                    selected &= data != predicate.value
            if column in seek_columns:
                continue
            if column in info.eq_predicates:
                selected &= data == info.eq_predicates[column]
            if column in info.range_predicates:
                selected &= _range_mask(data,
                                        info.range_predicates[column])
        positions = lo + np.nonzero(selected)[0]
        return rids[positions], positions

    def _run_index_only(self, info: QueryInfo, path: AccessPath,
                        metered: MeteredCost) -> List[Tuple[Value, ...]]:
        index = self.indexes[path.index]
        cols, rids = index.leaf_arrays()
        pages = index.charge_full_leaf_scan()
        metered.add_reads(pages)
        metered.add_cpu(len(rids) * self.params.cpu_index_tuple_cost)
        metered.rows_examined += len(rids)
        mask = np.ones(len(rids), dtype=bool)
        for column, value in info.eq_predicates.items():
            mask &= cols[column] == value
        for column, spec in info.range_predicates.items():
            mask &= _range_mask(cols[column], spec)
        for predicate in info.neq_predicates:
            mask &= cols[predicate.column] != predicate.value
        selected = np.nonzero(mask)[0]
        selected = self._order_positions(cols, selected, info, path,
                                         metered)
        out_cols = [cols[c][selected] for c in info.select_columns]
        return _rows_from_columns(out_cols, len(selected))

    def _project_from_heap(self, rids: np.ndarray, info: QueryInfo,
                           metered: MeteredCost,
                           charge_fetch: bool = False
                           ) -> List[Tuple[Value, ...]]:
        if charge_fetch and len(rids):
            pages = np.unique(rids // self.table.rows_per_page)
            self.buffer_manager.read_pages(
                self.table.object_id, (int(p) for p in pages))
            metered.add_reads(float(len(pages)) *
                              self.params.random_io_factor)
            metered.add_cpu(len(rids) * self.params.cpu_tuple_cost)
        out_cols = [self.table.column_array(c)[rids]
                    for c in info.select_columns]
        # Heap-path residual predicates were applied already (full scan)
        # or by the seek on index columns; re-check non-key predicates.
        mask = np.ones(len(rids), dtype=bool)
        for column, value in info.eq_predicates.items():
            mask &= self.table.column_array(column)[rids] == value
        for column, spec in info.range_predicates.items():
            mask &= _range_mask(
                self.table.column_array(column)[rids], spec)
        for predicate in info.neq_predicates:
            mask &= (self.table.column_array(predicate.column)[rids]
                     != predicate.value)
        selected = np.nonzero(mask)[0]
        out_cols = [c[selected] for c in out_cols]
        return _rows_from_columns(out_cols, len(selected))

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def execute_insert(self, stmt: InsertStmt) -> QueryResult:
        metered = MeteredCost()
        schema = self.table.schema
        for row in stmt.rows:
            if len(row) != len(stmt.columns):
                raise PlanningError("INSERT arity mismatch")
            values = dict(zip(stmt.columns, row))
            for column in schema.columns:
                if column.name not in values:
                    raise PlanningError(
                        f"INSERT missing column {column.name!r}")
            rid = self.table.insert_row(values)
            metered.add_writes(1.0)
            for index in self.indexes.values():
                index.on_insert(rid)
                metered.add_reads(index.geometry().height)
                metered.add_writes(1.0)
            metered.add_cpu((1 + len(self.indexes)) *
                            self.params.cpu_tuple_cost)
            for view in self.views.values():
                view.on_change()
                metered.add_writes(1.0)
        metered.rows_returned = len(stmt.rows)
        return QueryResult(rows=[], metrics=metered)

    def execute_update(self, stmt: UpdateStmt,
                       stats: TableStats) -> QueryResult:
        rids, metered = self._locate(stmt.where, stats)
        old_keys = {d: [ix.key_for_rid(int(r)) for r in rids]
                    for d, ix in self.indexes.items()}
        self.table.update_rows(rids, dict(stmt.assignments))
        metered.add_writes(float(len(np.unique(
            rids // self.table.rows_per_page))) if len(rids) else 0.0)
        for definition, index in self.indexes.items():
            for i, rid in enumerate(rids):
                index.on_update(int(rid), old_keys[definition][i])
            if len(rids):
                metered.add_writes(float(len(rids)))
        if len(rids):
            for view in self.views.values():
                view.on_change()
                metered.add_writes(1.0)
        metered.rows_returned = len(rids)
        return QueryResult(rows=[], metrics=metered)

    def execute_delete(self, stmt: DeleteStmt,
                       stats: TableStats) -> QueryResult:
        rids, metered = self._locate(stmt.where, stats)
        for index in self.indexes.values():
            for rid in rids:
                index.on_delete(int(rid))
            if len(rids):
                metered.add_writes(float(len(rids)))
        if len(rids):
            for view in self.views.values():
                view.on_change()
                metered.add_writes(1.0)
        self.table.delete_rows(rids)
        metered.add_writes(float(len(np.unique(
            rids // self.table.rows_per_page))) if len(rids) else 0.0)
        metered.rows_returned = len(rids)
        return QueryResult(rows=[], metrics=metered)

    def _locate(self, where, stats: TableStats
                ) -> Tuple[np.ndarray, MeteredCost]:
        probe = SelectStmt(table=self.table.schema.name,
                           columns=tuple(self.table.schema.column_names),
                           where=where)
        info = analyze_select(probe, self.table.schema)
        if info.unsatisfiable:
            return np.empty(0, dtype=np.int64), MeteredCost()
        pairs = [(d, self.indexes[d].geometry())
                 for d in sorted(self.indexes, key=structure_sort_key)]
        path = choose_access_path(info, stats, pairs, self.params)
        metered = MeteredCost()
        if path.kind == "index_seek":
            rids, _positions = self._run_index_seek(info, path, metered)
            # Re-check non-key predicates against the heap.
            if len(rids):
                mask = np.ones(len(rids), dtype=bool)
                for column, value in info.eq_predicates.items():
                    mask &= (self.table.column_array(column)[rids]
                             == value)
                for column, spec in info.range_predicates.items():
                    mask &= _range_mask(
                        self.table.column_array(column)[rids], spec)
                for predicate in info.neq_predicates:
                    mask &= (self.table.column_array(
                        predicate.column)[rids] != predicate.value)
                rids = rids[mask]
        else:
            rids = self._run_full_scan(info, metered)
        return rids, metered


def _aggregate_rows(info: QueryInfo,
                    rows: Sequence[Tuple[Value, ...]]
                    ) -> Tuple[Value, ...]:
    """Fold projected rows into one aggregate tuple.

    SQL semantics on empty input: COUNT -> 0, the rest -> None.
    ``rows`` are projections of ``info.select_columns`` (the distinct
    aggregate input columns).
    """
    position = {column: i
                for i, column in enumerate(info.select_columns)}
    out = []
    for aggregate in info.aggregates:
        if aggregate.func == "COUNT" and aggregate.column is None:
            out.append(len(rows))
            continue
        values = [row[position[aggregate.column]] for row in rows]
        if aggregate.func == "COUNT":
            out.append(len(values))
        elif not values:
            out.append(None)
        elif aggregate.func == "MIN":
            out.append(min(values))
        elif aggregate.func == "MAX":
            out.append(max(values))
        elif aggregate.func == "SUM":
            out.append(sum(values))
        else:  # AVG
            out.append(sum(values) / len(values))
    return tuple(out)


def _group_and_aggregate(info: QueryInfo,
                         rows: Sequence[Tuple[Value, ...]]
                         ) -> List[Tuple[Value, ...]]:
    """GROUP BY fold: one output row per distinct group value, shaped
    ``(group_value, *aggregates)``, ordered by the group value
    (descending when ORDER BY ... DESC names the group column)."""
    group_position = {column: i for i, column
                      in enumerate(info.select_columns)}[info.group_by]
    groups: Dict[Value, List[Tuple[Value, ...]]] = {}
    for row in rows:
        groups.setdefault(row[group_position], []).append(row)
    descending = (info.order_by is not None and
                  info.order_by.descending)
    out: List[Tuple[Value, ...]] = []
    for value in sorted(groups, reverse=descending):
        folded = _aggregate_rows(info, groups[value])
        out.append((value,) + folded)
    return out


def _range_mask(data: np.ndarray, spec: RangeSpec) -> np.ndarray:
    mask = np.ones(len(data), dtype=bool)
    if spec.lo is not None:
        mask &= (data >= spec.lo) if spec.lo_inclusive else (data > spec.lo)
    if spec.hi is not None:
        mask &= (data <= spec.hi) if spec.hi_inclusive else (data < spec.hi)
    return mask


def _rows_from_columns(columns: Sequence[np.ndarray],
                       n_rows: int) -> List[Tuple[Value, ...]]:
    out: List[Tuple[Value, ...]] = []
    for i in range(n_rows):
        out.append(tuple(_scalar(col[i]) for col in columns))
    return out


def _scalar(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value

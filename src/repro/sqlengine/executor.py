"""Statement execution: a thin interpreter over the physical-plan IR.

The executor analyzes a statement, asks the planner for the cheapest
:class:`~repro.sqlengine.planner.AccessPath`, and then simply runs the
plan tree the path carries — every operator meters its own page
touches and CPU through the shared :class:`PlanRuntime`, in the same
cost units the what-if optimizer estimates with. There is no
per-access-path dispatch here: the plan objects the what-if optimizer
costs are the plan objects that execute.

What remains outside the IR is statement-level orchestration: the
unsatisfiable-predicate shortcut, the MIN/MAX-via-index shortcut,
LIMIT, and DML index/view maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import PlanningError
from .buffer import BufferManager
from .costmodel import CostParams, MeteredCost
from .index import Index, IndexDef, structure_sort_key
from .plan import PlanRuntime, aggregate_rows, scalar_value
from .planner import (AccessPath, QueryInfo, analyze_select,
                      choose_access_path)
from .sql.ast import (DeleteStmt, InsertStmt, SelectStmt, UpdateStmt)
from .stats import TableStats
from .storage import HeapTable
from .types import Value


@dataclass
class QueryResult:
    """Rows plus the metered cost of producing them."""

    rows: List[Tuple[Value, ...]]
    metrics: MeteredCost
    access_path: Optional[AccessPath] = None

    def units(self, params: CostParams) -> float:
        return self.metrics.total(params)

    def __len__(self) -> int:
        return len(self.rows)


class Executor:
    """Executes statements against one table's physical structures.

    Args:
        table: the heap table.
        indexes: materialized indexes, keyed by definition.
        buffer_manager: shared pool for page charging.
        params: cost-model weights (metering scale).
    """

    def __init__(self, table: HeapTable, indexes: Dict[IndexDef, Index],
                 buffer_manager: BufferManager, params: CostParams,
                 views: Optional[Dict] = None):
        self.table = table
        self.indexes = indexes
        self.views = views or {}
        self.buffer_manager = buffer_manager
        self.params = params

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def plan_select(self, stmt: SelectStmt, stats: TableStats,
                    info: Optional[QueryInfo] = None,
                    with_views: bool = True) -> AccessPath:
        """Choose the cheapest plan for a SELECT against the *current*
        catalog — the same choice the what-if optimizer makes for the
        same configuration, because both call the same planner with
        identically sorted candidate structures."""
        if info is None:
            info = analyze_select(stmt, self.table.schema)
        # Sorted candidate order: plan tie-breaking must not depend
        # on index-creation order (the what-if optimizer sorts too).
        pairs = [(d, self.indexes[d].geometry())
                 for d in sorted(self.indexes, key=structure_sort_key)]
        view_pairs = [(d, self.views[d].geometry())
                      for d in sorted(self.views,
                                      key=structure_sort_key)] \
            if with_views else []
        return choose_access_path(info, stats, pairs, self.params,
                                  views=view_pairs)

    def _runtime(self, metered: MeteredCost) -> PlanRuntime:
        return PlanRuntime(table=self.table, indexes=self.indexes,
                           views=self.views,
                           buffer_manager=self.buffer_manager,
                           params=self.params, metered=metered)

    def execute_select(self, stmt: SelectStmt, stats: TableStats,
                       info: Optional[QueryInfo] = None) -> QueryResult:
        if info is None:
            info = analyze_select(stmt, self.table.schema)
        if info.unsatisfiable:
            # Contradictory conjunction: provably empty, no I/O needed
            # (real optimizers' "constant false" shortcut). A grouped
            # aggregate over nothing has no groups at all.
            rows = []
            if info.aggregates and info.group_by is None:
                rows = [aggregate_rows(info, [])]
            return QueryResult(rows=rows, metrics=MeteredCost())
        shortcut = self._try_minmax_via_index(info)
        if shortcut is not None:
            return shortcut
        path = self.plan_select(stmt, stats, info=info)
        metered = MeteredCost()
        rows = path.plan.run(self._runtime(metered))
        if info.limit is not None:
            rows = rows[:info.limit]
        metered.rows_returned = len(rows)
        return QueryResult(rows=rows, metrics=metered, access_path=path)

    def _try_minmax_via_index(self, info: QueryInfo
                              ) -> Optional[QueryResult]:
        """Answer an unpredicated single MIN/MAX from an index's first
        or last key — one descent instead of a scan."""
        if len(info.aggregates) != 1 or info.predicate_columns:
            return None
        aggregate = info.aggregates[0]
        if aggregate.func not in ("MIN", "MAX") or \
                aggregate.column is None:
            return None
        for definition, index in self.indexes.items():
            if definition.columns[0] != aggregate.column:
                continue
            cols, rids = index.leaf_arrays()
            if not len(rids):
                break
            metered = MeteredCost()
            index.charge_descent()
            index.charge_leaf_pages(1)
            metered.add_reads(index.geometry().height + 1)
            metered.add_cpu(self.params.cpu_index_tuple_cost)
            data = cols[aggregate.column]
            value = data[0] if aggregate.func == "MIN" else data[-1]
            metered.rows_returned = 1
            return QueryResult(rows=[(scalar_value(value),)],
                               metrics=metered)
        return None

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def execute_insert(self, stmt: InsertStmt) -> QueryResult:
        metered = MeteredCost()
        schema = self.table.schema
        # Compressed structures decode/re-encode on maintenance; the
        # surcharge term is exactly 0.0 for an all-NONE design, so the
        # uncompressed metering is bitwise the pre-compression one.
        # Summed in structure_sort_key order to match the what-if
        # estimate's deterministic fold.
        surcharge = 0.0
        for definition in sorted(list(self.indexes) + list(self.views),
                                 key=structure_sort_key):
            surcharge += definition.compression.cpu_factor - 1.0
        for row in stmt.rows:
            if len(row) != len(stmt.columns):
                raise PlanningError("INSERT arity mismatch")
            values = dict(zip(stmt.columns, row))
            for column in schema.columns:
                if column.name not in values:
                    raise PlanningError(
                        f"INSERT missing column {column.name!r}")
            rid = self.table.insert_row(values)
            metered.add_writes(1.0)
            for index in self.indexes.values():
                index.on_insert(rid)
                metered.add_reads(index.geometry().height)
                metered.add_writes(1.0)
            metered.add_cpu((1 + len(self.indexes)) *
                            self.params.cpu_tuple_cost +
                            surcharge * self.params.cpu_tuple_cost)
            for view in self.views.values():
                view.on_change()
                metered.add_writes(1.0)
        metered.rows_returned = len(stmt.rows)
        return QueryResult(rows=[], metrics=metered)

    def execute_update(self, stmt: UpdateStmt,
                       stats: TableStats) -> QueryResult:
        rids, metered = self._locate(stmt.where, stats)
        old_keys = {d: [ix.key_for_rid(int(r)) for r in rids]
                    for d, ix in self.indexes.items()}
        self.table.update_rows(rids, dict(stmt.assignments))
        metered.add_writes(float(len(np.unique(
            rids // self.table.rows_per_page))) if len(rids) else 0.0)
        for definition, index in self.indexes.items():
            for i, rid in enumerate(rids):
                index.on_update(int(rid), old_keys[definition][i])
            if len(rids):
                metered.add_writes(float(len(rids)))
        if len(rids):
            for view in self.views.values():
                view.on_change()
                metered.add_writes(1.0)
        metered.rows_returned = len(rids)
        return QueryResult(rows=[], metrics=metered)

    def execute_delete(self, stmt: DeleteStmt,
                       stats: TableStats) -> QueryResult:
        rids, metered = self._locate(stmt.where, stats)
        for index in self.indexes.values():
            for rid in rids:
                index.on_delete(int(rid))
            if len(rids):
                metered.add_writes(float(len(rids)))
        if len(rids):
            for view in self.views.values():
                view.on_change()
                metered.add_writes(1.0)
        self.table.delete_rows(rids)
        metered.add_writes(float(len(np.unique(
            rids // self.table.rows_per_page))) if len(rids) else 0.0)
        metered.rows_returned = len(rids)
        return QueryResult(rows=[], metrics=metered)

    def _locate(self, where, stats: TableStats
                ) -> Tuple[np.ndarray, MeteredCost]:
        """Heap rids matching a WHERE clause, for UPDATE/DELETE row
        targeting. Runs the chosen plan's ``locate`` pipeline: access
        charges apply, but output-side work (heap fetch, sort) does
        not. Views are not consulted — DML is going to rewrite them
        anyway."""
        probe = SelectStmt(table=self.table.schema.name,
                           columns=tuple(self.table.schema.column_names),
                           where=where)
        info = analyze_select(probe, self.table.schema)
        if info.unsatisfiable:
            return np.empty(0, dtype=np.int64), MeteredCost()
        path = self.plan_select(probe, stats, info=info,
                                with_views=False)
        metered = MeteredCost()
        rids = path.plan.locate(self._runtime(metered))
        return np.asarray(rids, dtype=np.int64), metered

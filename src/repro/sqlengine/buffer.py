"""Buffer manager: an LRU page cache with I/O metering.

Every access path in the executor charges its page touches through a
:class:`BufferManager`. Logical reads that hit the cache cost nothing at
the I/O level; misses count as physical reads. The resulting counters
are the raw material for the deterministic "execution time" metric used
to reproduce the paper's Figure 3 (which reports *relative* times, so a
deterministic simulated clock preserves the comparisons exactly).

Pages are identified by ``(object_id, page_no)`` where the object id is
assigned by the storage layer (one per heap file or index).

Fault injection hooks here: when a :class:`~repro.faults.injector.
FaultInjector` is attached, every page touch is checked *before any
counter moves* — a faulted access charges nothing to the data-plane
counters, so a rolled-back operation leaves them exactly where they
started. Transient page faults are retried in place under the
configured :class:`~repro.faults.retry.RetryPolicy`, charging the
backoff as ``latency_units``. With no injector attached (the default)
the guard is a single ``is None`` test and nothing else changes.

:class:`IoMetrics` distinguishes two planes:

* **data plane** — ``logical_reads`` / ``physical_reads`` /
  ``physical_writes``: the deterministic I/O clock. Rolling back a
  design transition restores these exactly.
* **fault plane** — ``latency_units`` / ``retries`` / ``rollbacks``:
  monotone bookkeeping of what fault handling cost. Rollback does
  *not* rewind these (the work of failing really happened).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

from ..errors import TransientStorageError
from ..faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy

PageId = Tuple[int, int]

#: Default buffer pool capacity in pages (8 KiB pages -> 64 MiB pool).
DEFAULT_CAPACITY_PAGES = 8192


@dataclass
class IoMetrics:
    """Counters accumulated by a :class:`BufferManager`.

    Attributes:
        logical_reads: page requests, whether or not they hit the cache.
        physical_reads: page requests that missed the cache.
        physical_writes: pages written out (index builds, DML).
        latency_units: simulated latency charged by slow-I/O faults and
            retry backoff (fault plane; zero when faults are off).
        retries: transient-failure re-attempts performed (fault plane).
        rollbacks: design transitions rolled back after a mid-build
            fault (fault plane).
    """

    logical_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    latency_units: float = 0.0
    retries: int = 0
    rollbacks: int = 0

    def copy(self) -> "IoMetrics":
        return IoMetrics(self.logical_reads, self.physical_reads,
                         self.physical_writes, self.latency_units,
                         self.retries, self.rollbacks)

    def __sub__(self, other: "IoMetrics") -> "IoMetrics":
        # Deltas are floored at zero: every counter is monotone, so a
        # negative difference can only mean the caller mixed snapshots
        # across a reset — report no movement rather than negative I/O.
        return IoMetrics(
            max(0, self.logical_reads - other.logical_reads),
            max(0, self.physical_reads - other.physical_reads),
            max(0, self.physical_writes - other.physical_writes),
            max(0.0, self.latency_units - other.latency_units),
            max(0, self.retries - other.retries),
            max(0, self.rollbacks - other.rollbacks),
        )

    def __add__(self, other: "IoMetrics") -> "IoMetrics":
        return IoMetrics(
            self.logical_reads + other.logical_reads,
            self.physical_reads + other.physical_reads,
            self.physical_writes + other.physical_writes,
            self.latency_units + other.latency_units,
            self.retries + other.retries,
            self.rollbacks + other.rollbacks,
        )

    def io_equal(self, other: "IoMetrics") -> bool:
        """Equality of the data-plane counters only (the contract a
        rolled-back transition must restore)."""
        return (self.logical_reads == other.logical_reads and
                self.physical_reads == other.physical_reads and
                self.physical_writes == other.physical_writes)

    @property
    def hit_ratio(self) -> float:
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.physical_reads / self.logical_reads


@dataclass
class BufferState:
    """A checkpoint of a :class:`BufferManager` (see
    :meth:`BufferManager.save_state`)."""

    lru_pages: Tuple[PageId, ...]
    next_object_id: int
    metrics: IoMetrics


@dataclass
class BufferManager:
    """LRU page cache.

    The cache stores only page identities (the engine keeps actual data
    in column arrays and B+-tree nodes); its job is purely to decide
    which page touches are physical I/O and to meter them.
    """

    capacity_pages: int = DEFAULT_CAPACITY_PAGES
    metrics: IoMetrics = field(default_factory=IoMetrics)
    #: When set, every page touch consults the injector (see module
    #: docstring); None (default) means zero fault-handling overhead.
    fault_injector: Optional[object] = None
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY
    _lru: "OrderedDict[PageId, None]" = field(default_factory=OrderedDict)
    # Secondary index: cached pages per object, so dropping an object
    # (index drop) is O(pages of that object), not O(total cached).
    _by_object: Dict[int, Set[PageId]] = field(default_factory=dict)
    _next_object_id: int = 1
    # Counters retired by reset_metrics(); keeps snapshot() monotone
    # over the buffer's lifetime so mid-operation deltas can never go
    # negative even when a reset lands between two snapshots.
    _lifetime_base: IoMetrics = field(default_factory=IoMetrics)

    def allocate_object_id(self) -> int:
        """Hand out a fresh object id for a new heap file or index."""
        object_id = self._next_object_id
        self._next_object_id += 1
        return object_id

    def read_page(self, page_id: PageId) -> bool:
        """Record a read of ``page_id``. Returns True on a cache hit."""
        if self.fault_injector is not None:
            self._faulted_touch(self.fault_injector.on_page_read,
                                page_id)
        self.metrics.logical_reads += 1
        if page_id in self._lru:
            self._lru.move_to_end(page_id)
            return True
        self.metrics.physical_reads += 1
        self._admit(page_id)
        return False

    def read_pages(self, object_id: int, page_nos: Iterable[int]) -> int:
        """Read a batch of pages of one object; returns the miss count."""
        misses = 0
        for page_no in page_nos:
            if not self.read_page((object_id, page_no)):
                misses += 1
        return misses

    def read_range(self, object_id: int, n_pages: int) -> int:
        """Sequentially read pages ``0..n_pages-1`` of an object."""
        return self.read_pages(object_id, range(n_pages))

    def write_page(self, page_id: PageId) -> None:
        """Record a page write; the page is cached afterwards."""
        if self.fault_injector is not None:
            self._faulted_touch(self.fault_injector.on_page_write,
                                page_id)
        self.metrics.physical_writes += 1
        if page_id in self._lru:
            self._lru.move_to_end(page_id)
        else:
            self._admit(page_id)

    def _faulted_touch(self, hook, page_id: PageId) -> None:
        """Run an injector hook, retrying transient faults in place.

        Fires *before* the counters move: a page touch that ultimately
        fails charges nothing to the data plane. Retry backoff lands
        on the fault plane (``retries`` / ``latency_units``).
        """
        attempt = 1
        while True:
            try:
                hook(page_id, self.metrics)
                return
            except TransientStorageError:
                if attempt >= self.retry_policy.max_attempts:
                    raise
                self.metrics.retries += 1
                self.metrics.latency_units += \
                    self.retry_policy.backoff_for(attempt)
                attempt += 1

    def invalidate_object(self, object_id: int) -> None:
        """Drop all cached pages of an object (e.g. on index drop).

        O(pages of that object) via the per-object page index; the
        I/O counters are untouched (invalidation is bookkeeping, not
        I/O)."""
        for pid in self._by_object.pop(object_id, ()):
            del self._lru[pid]

    def clear(self) -> None:
        """Empty the cache (counters are kept; use reset_metrics too)."""
        self._lru.clear()
        self._by_object.clear()

    def reset_metrics(self) -> IoMetrics:
        """Zero the counters, returning the values they had.

        The retired values fold into a lifetime base so
        :meth:`snapshot` stays monotone across resets — a delta
        computed from snapshots straddling a reset is the true
        movement, never negative.
        """
        old = self.metrics
        self._lifetime_base = self._lifetime_base + old
        self.metrics = IoMetrics()
        return old

    def snapshot(self) -> IoMetrics:
        """Monotone lifetime counters (for delta measurements); not
        affected by :meth:`reset_metrics`."""
        return self._lifetime_base + self.metrics

    def save_state(self) -> BufferState:
        """Checkpoint cache contents, object-id cursor, and metrics
        (the transition machinery's rollback anchor)."""
        return BufferState(lru_pages=tuple(self._lru),
                           next_object_id=self._next_object_id,
                           metrics=self.metrics.copy())

    def restore_state(self, state: BufferState) -> None:
        """Restore a :meth:`save_state` checkpoint.

        Cache contents, the object-id cursor, and the data-plane
        counters return exactly to the checkpoint (so a retried build
        re-runs against identical cache state and object ids, hence
        bit-identical charging). The fault-plane counters are kept at
        their current values: retries and latency already happened and
        stay on the books.
        """
        self._lru = OrderedDict((pid, None) for pid in state.lru_pages)
        self._by_object = {}
        for pid in state.lru_pages:
            self._by_object.setdefault(pid[0], set()).add(pid)
        self._next_object_id = state.next_object_id
        restored = state.metrics.copy()
        restored.latency_units = self.metrics.latency_units
        restored.retries = self.metrics.retries
        restored.rollbacks = self.metrics.rollbacks
        self.metrics = restored

    @property
    def cached_pages(self) -> int:
        return len(self._lru)

    def _admit(self, page_id: PageId) -> None:
        self._lru[page_id] = None
        self._by_object.setdefault(page_id[0], set()).add(page_id)
        while len(self._lru) > self.capacity_pages:
            evicted, _ = self._lru.popitem(last=False)
            pages = self._by_object.get(evicted[0])
            if pages is not None:
                pages.discard(evicted)
                if not pages:
                    del self._by_object[evicted[0]]

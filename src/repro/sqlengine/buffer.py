"""Buffer manager: an LRU page cache with I/O metering.

Every access path in the executor charges its page touches through a
:class:`BufferManager`. Logical reads that hit the cache cost nothing at
the I/O level; misses count as physical reads. The resulting counters
are the raw material for the deterministic "execution time" metric used
to reproduce the paper's Figure 3 (which reports *relative* times, so a
deterministic simulated clock preserves the comparisons exactly).

Pages are identified by ``(object_id, page_no)`` where the object id is
assigned by the storage layer (one per heap file or index).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

PageId = Tuple[int, int]

#: Default buffer pool capacity in pages (8 KiB pages -> 64 MiB pool).
DEFAULT_CAPACITY_PAGES = 8192


@dataclass
class IoMetrics:
    """Counters accumulated by a :class:`BufferManager`.

    Attributes:
        logical_reads: page requests, whether or not they hit the cache.
        physical_reads: page requests that missed the cache.
        physical_writes: pages written out (index builds, DML).
    """

    logical_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0

    def copy(self) -> "IoMetrics":
        return IoMetrics(self.logical_reads, self.physical_reads,
                         self.physical_writes)

    def __sub__(self, other: "IoMetrics") -> "IoMetrics":
        return IoMetrics(
            self.logical_reads - other.logical_reads,
            self.physical_reads - other.physical_reads,
            self.physical_writes - other.physical_writes,
        )

    def __add__(self, other: "IoMetrics") -> "IoMetrics":
        return IoMetrics(
            self.logical_reads + other.logical_reads,
            self.physical_reads + other.physical_reads,
            self.physical_writes + other.physical_writes,
        )

    @property
    def hit_ratio(self) -> float:
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.physical_reads / self.logical_reads


@dataclass
class BufferManager:
    """LRU page cache.

    The cache stores only page identities (the engine keeps actual data
    in column arrays and B+-tree nodes); its job is purely to decide
    which page touches are physical I/O and to meter them.
    """

    capacity_pages: int = DEFAULT_CAPACITY_PAGES
    metrics: IoMetrics = field(default_factory=IoMetrics)
    _lru: "OrderedDict[PageId, None]" = field(default_factory=OrderedDict)
    # Secondary index: cached pages per object, so dropping an object
    # (index drop) is O(pages of that object), not O(total cached).
    _by_object: Dict[int, Set[PageId]] = field(default_factory=dict)
    _next_object_id: int = 1

    def allocate_object_id(self) -> int:
        """Hand out a fresh object id for a new heap file or index."""
        object_id = self._next_object_id
        self._next_object_id += 1
        return object_id

    def read_page(self, page_id: PageId) -> bool:
        """Record a read of ``page_id``. Returns True on a cache hit."""
        self.metrics.logical_reads += 1
        if page_id in self._lru:
            self._lru.move_to_end(page_id)
            return True
        self.metrics.physical_reads += 1
        self._admit(page_id)
        return False

    def read_pages(self, object_id: int, page_nos: Iterable[int]) -> int:
        """Read a batch of pages of one object; returns the miss count."""
        misses = 0
        for page_no in page_nos:
            if not self.read_page((object_id, page_no)):
                misses += 1
        return misses

    def read_range(self, object_id: int, n_pages: int) -> int:
        """Sequentially read pages ``0..n_pages-1`` of an object."""
        return self.read_pages(object_id, range(n_pages))

    def write_page(self, page_id: PageId) -> None:
        """Record a page write; the page is cached afterwards."""
        self.metrics.physical_writes += 1
        if page_id in self._lru:
            self._lru.move_to_end(page_id)
        else:
            self._admit(page_id)

    def invalidate_object(self, object_id: int) -> None:
        """Drop all cached pages of an object (e.g. on index drop).

        O(pages of that object) via the per-object page index; the
        I/O counters are untouched (invalidation is bookkeeping, not
        I/O)."""
        for pid in self._by_object.pop(object_id, ()):
            del self._lru[pid]

    def clear(self) -> None:
        """Empty the cache (counters are kept; use reset_metrics too)."""
        self._lru.clear()
        self._by_object.clear()

    def reset_metrics(self) -> IoMetrics:
        """Zero the counters, returning the values they had."""
        old = self.metrics
        self.metrics = IoMetrics()
        return old

    def snapshot(self) -> IoMetrics:
        """Copy of the current counters (for delta measurements)."""
        return self.metrics.copy()

    @property
    def cached_pages(self) -> int:
        return len(self._lru)

    def _admit(self, page_id: PageId) -> None:
        self._lru[page_id] = None
        self._by_object.setdefault(page_id[0], set()).add(page_id)
        while len(self._lru) > self.capacity_pages:
            evicted, _ = self._lru.popitem(last=False)
            pages = self._by_object.get(evicted[0])
            if pages is not None:
                pages.discard(evicted)
                if not pages:
                    del self._by_object[evicted[0]]

"""Table and column statistics with equi-depth histograms.

The what-if optimizer and the planner share these statistics to
estimate predicate selectivities. Numeric columns get an equi-depth
histogram plus an exact distinct count; string columns get distinct
counts only (equality selectivity is what the workloads need).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import EngineError
from .storage import HeapTable

#: Number of equi-depth buckets kept per numeric column.
DEFAULT_BUCKETS = 64


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth histogram over a numeric column.

    ``boundaries`` has ``n_buckets + 1`` entries; bucket ``i`` spans
    ``[boundaries[i], boundaries[i+1])`` (last bucket inclusive) and
    holds roughly ``total / n_buckets`` rows.
    """

    boundaries: Tuple[float, ...]
    total: int

    @classmethod
    def from_array(cls, values: np.ndarray,
                   n_buckets: int = DEFAULT_BUCKETS
                   ) -> "EquiDepthHistogram":
        if len(values) == 0:
            return cls(boundaries=(0.0, 0.0), total=0)
        buckets = max(1, min(n_buckets, len(values)))
        quantiles = np.linspace(0.0, 1.0, buckets + 1)
        boundaries = np.quantile(values.astype(np.float64), quantiles)
        return cls(boundaries=tuple(float(b) for b in boundaries),
                   total=int(len(values)))

    @property
    def n_buckets(self) -> int:
        return len(self.boundaries) - 1

    def fraction_below(self, value: float, inclusive: bool) -> float:
        """Estimated fraction of rows with ``col < value`` (or ``<=``).

        Linear interpolation within the containing bucket (the classic
        equi-depth estimator). The mass *at* the boundary value is not
        tracked per-value, so inclusive bounds only matter at the domain
        maximum; equality mass elsewhere is handled by the planner via
        ``selectivity_eq``.
        """
        if self.total == 0:
            return 0.0
        bounds = self.boundaries
        if value < bounds[0]:
            return 0.0
        if value > bounds[-1]:
            return 1.0
        if value == bounds[-1] and inclusive:
            return 1.0
        return self._fraction_strictly_below(value)

    def _fraction_strictly_below(self, value: float) -> float:
        bounds = self.boundaries
        # side="left" so that zero-width buckets equal to ``value``
        # (heavy duplicates in the data) do not count as mass below it.
        idx = int(np.searchsorted(bounds, value, side="left")) - 1
        if idx < 0:
            return 0.0
        idx = min(idx, self.n_buckets - 1)
        lo, hi = bounds[idx], bounds[idx + 1]
        if hi == lo:
            within = 1.0 if value > hi else 0.0
        else:
            within = min(1.0, (value - lo) / (hi - lo))
        return (idx + within) / self.n_buckets

    def selectivity_range(self, lo: Optional[float], hi: Optional[float],
                          lo_inclusive: bool = True,
                          hi_inclusive: bool = True) -> float:
        """Estimated fraction of rows in the interval."""
        below_hi = 1.0 if hi is None else self.fraction_below(
            hi, inclusive=hi_inclusive)
        below_lo = 0.0 if lo is None else self.fraction_below(
            lo, inclusive=not lo_inclusive)
        return max(0.0, min(1.0, below_hi - below_lo))


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column."""

    name: str
    n_values: int
    n_distinct: int
    min_value: Optional[float]
    max_value: Optional[float]
    histogram: Optional[EquiDepthHistogram]

    @classmethod
    def from_array(cls, name: str, values: np.ndarray,
                   n_buckets: int = DEFAULT_BUCKETS) -> "ColumnStats":
        n = int(len(values))
        if n == 0:
            return cls(name, 0, 0, None, None, None)
        if values.dtype.kind in "if":
            distinct = int(len(np.unique(values)))
            histogram = EquiDepthHistogram.from_array(values, n_buckets)
            return cls(name, n, distinct,
                       float(values.min()), float(values.max()), histogram)
        distinct = int(len(np.unique(values)))
        return cls(name, n, distinct, None, None, None)

    def selectivity_eq(self, value) -> float:
        """Selectivity of ``col = value``: uniform over distinct values,
        clipped to zero outside the observed domain for numerics."""
        if self.n_values == 0 or self.n_distinct == 0:
            return 0.0
        if (self.min_value is not None and
                isinstance(value, (int, float))):
            if value < self.min_value or value > self.max_value:
                return 0.0
        return 1.0 / self.n_distinct

    def selectivity_range(self, lo, hi, lo_inclusive: bool = True,
                          hi_inclusive: bool = True) -> float:
        if self.n_values == 0:
            return 0.0
        if self.histogram is None:
            # No histogram (string column): fall back to a fixed guess,
            # the standard approach for unanalyzable predicates.
            return 0.05
        lo_f = None if lo is None else float(lo)
        hi_f = None if hi is None else float(hi)
        return self.histogram.selectivity_range(
            lo_f, hi_f, lo_inclusive, hi_inclusive)


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table."""

    table: str
    nrows: int
    n_pages: int
    row_width: int
    columns: Dict[str, ColumnStats]

    @classmethod
    def from_table(cls, table: HeapTable,
                   n_buckets: int = DEFAULT_BUCKETS) -> "TableStats":
        rids = table.live_rids()
        columns = {}
        for column in table.schema.columns:
            values = table.column_array(column.name)[rids]
            columns[column.name] = ColumnStats.from_array(
                column.name, values, n_buckets)
        return cls(table=table.schema.name, nrows=int(len(rids)),
                   n_pages=table.n_pages,
                   row_width=table.schema.row_width, columns=columns)

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name]
        except KeyError:
            raise EngineError(
                f"no statistics for column {name!r} of {self.table!r}"
            ) from None


def combined_selectivity(selectivities: Sequence[float]) -> float:
    """Independence-assumption AND combination, clipped to [0, 1]."""
    out = 1.0
    for s in selectivities:
        out *= max(0.0, min(1.0, s))
    return out


def estimate_distinct_in_sample(sample_distinct: int, sample_size: int,
                                population: int) -> int:
    """Scale a sample's distinct count up to the population.

    Method-of-moments under a uniform value distribution: a domain of
    ``D`` values yields ``E[d] = D * (1 - (1 - 1/D)^n)`` distinct values
    in a sample of ``n`` with replacement; we invert that by bisection.
    A fully distinct sample therefore extrapolates toward the
    population size, a highly repetitive one stays near ``d``.
    """
    if sample_size <= 0 or sample_distinct <= 0:
        return 0
    if population <= sample_size:
        return min(sample_distinct, population)
    if sample_distinct >= sample_size:
        return population

    def expected_distinct(domain: float) -> float:
        return domain * (1.0 - (1.0 - 1.0 / domain) ** sample_size)

    lo, hi = float(sample_distinct), float(population)
    if expected_distinct(hi) <= sample_distinct:
        return population
    for _ in range(64):
        mid = (lo + hi) / 2.0
        if expected_distinct(mid) < sample_distinct:
            lo = mid
        else:
            hi = mid
    return int(min(population, max(sample_distinct, round(hi))))

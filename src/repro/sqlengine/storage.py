"""Heap tables: page-organized row storage backed by column arrays.

Rows live in a heap file of fixed-size pages. For speed the engine keeps
the data column-wise in NumPy arrays, but the *accounting* is strictly
row/page oriented: each row has a row id (its slot position), each page
holds ``rows_per_page`` consecutive rows, and every access path charges
the pages it touches through the buffer manager.

Deletions tombstone rows (a validity bitmap); updates rewrite values in
place. This mirrors slotted-page heaps closely enough for the cost
model while keeping scans vectorized.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import StorageError
from .buffer import BufferManager
from .schema import TableSchema
from .types import Value

#: Page size in bytes; matches common DBMS defaults (8 KiB).
PAGE_SIZE_BYTES = 8192

#: Fraction of a heap page usable for rows (rest is page header/slots).
HEAP_FILL_FACTOR = 0.96

_INITIAL_CAPACITY = 1024


class HeapTable:
    """A heap-organized table with page-level I/O accounting.

    Args:
        schema: the table's schema.
        buffer_manager: pool through which all page touches are metered.
    """

    def __init__(self, schema: TableSchema,
                 buffer_manager: BufferManager):
        self.schema = schema
        self.buffer_manager = buffer_manager
        self.object_id = buffer_manager.allocate_object_id()
        usable = PAGE_SIZE_BYTES * HEAP_FILL_FACTOR
        self.rows_per_page = max(1, int(usable // schema.row_width))
        self._columns: Dict[str, np.ndarray] = {
            c.name: np.empty(_INITIAL_CAPACITY, dtype=c.ctype.numpy_dtype)
            for c in schema.columns
        }
        self._valid = np.zeros(_INITIAL_CAPACITY, dtype=bool)
        self._size = 0          # number of allocated slots (incl. deleted)
        self._live = 0          # number of live rows

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @property
    def nrows(self) -> int:
        """Number of live rows."""
        return self._live

    @property
    def nslots(self) -> int:
        """Number of allocated slots, including tombstoned rows."""
        return self._size

    @property
    def n_pages(self) -> int:
        """Heap pages allocated (tombstones still occupy their page)."""
        return max(1, math.ceil(self._size / self.rows_per_page)) \
            if self._size else 0

    def page_of_row(self, rid: int) -> int:
        return rid // self.rows_per_page

    # ------------------------------------------------------------------
    # loading and mutation
    # ------------------------------------------------------------------

    def bulk_load(self, columns: Dict[str, Sequence]) -> int:
        """Append many rows at once from column-wise data.

        Args:
            columns: mapping of column name to a sequence/array of values;
                all columns of the schema must be present and equal-length.

        Returns:
            The number of rows loaded.
        """
        missing = [c.name for c in self.schema.columns
                   if c.name not in columns]
        if missing:
            raise StorageError(f"bulk_load missing columns {missing}")
        arrays = {}
        length: Optional[int] = None
        for column in self.schema.columns:
            data = np.asarray(columns[column.name],
                              dtype=column.ctype.numpy_dtype)
            if data.ndim != 1:
                raise StorageError(
                    f"bulk_load column {column.name!r} must be 1-D")
            if length is None:
                length = len(data)
            elif len(data) != length:
                raise StorageError("bulk_load columns differ in length")
            arrays[column.name] = data
        if not length:
            return 0
        injector = self.buffer_manager.fault_injector
        if injector is not None:
            injector.on_build_step("heap_load", self.schema.name,
                                   self.buffer_manager.metrics)
        self._ensure_capacity(self._size + length)
        start, end = self._size, self._size + length
        for name, data in arrays.items():
            self._columns[name][start:end] = data
        self._valid[start:end] = True
        self._size = end
        self._live += length
        try:
            self._charge_write_pages(start, end)
        except StorageError:
            # Crash-safe load: a faulted page write un-appends the
            # whole batch, so no half-loaded rows become visible.
            self._valid[start:end] = False
            self._size = start
            self._live -= length
            raise
        return length

    def insert_row(self, values: Dict[str, Value]) -> int:
        """Insert one row; returns its row id."""
        for column in self.schema.columns:
            if column.name not in values:
                raise StorageError(
                    f"insert missing column {column.name!r}")
            column.ctype.validate(values[column.name])
        self._ensure_capacity(self._size + 1)
        rid = self._size
        for column in self.schema.columns:
            self._columns[column.name][rid] = values[column.name]
        self._valid[rid] = True
        self._size += 1
        self._live += 1
        self.buffer_manager.write_page(
            (self.object_id, self.page_of_row(rid)))
        return rid

    def delete_rows(self, rids: Sequence[int]) -> int:
        """Tombstone the given rows; returns how many were live."""
        rids = np.asarray(rids, dtype=np.int64)
        self._check_rids(rids)
        was_live = self._valid[rids]
        self._valid[rids] = False
        deleted = int(was_live.sum())
        self._live -= deleted
        for page in np.unique(rids // self.rows_per_page):
            self.buffer_manager.write_page((self.object_id, int(page)))
        return deleted

    def update_rows(self, rids: Sequence[int],
                    assignments: Dict[str, Value]) -> int:
        """Overwrite columns of the given rows in place."""
        rids = np.asarray(rids, dtype=np.int64)
        self._check_rids(rids)
        for name, value in assignments.items():
            column = self.schema.column(name)
            column.ctype.validate(value)
            self._columns[name][rids] = value
        for page in np.unique(rids // self.rows_per_page):
            self.buffer_manager.write_page((self.object_id, int(page)))
        return len(rids)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def column_array(self, name: str) -> np.ndarray:
        """Live view of a column (all allocated slots; check validity).

        This is the raw array used by vectorized scans; callers must
        meter their own page touches (the executor does).
        """
        self.schema.column(name)
        return self._columns[name][:self._size]

    def valid_mask(self) -> np.ndarray:
        return self._valid[:self._size]

    def fetch_rows(self, rids: Sequence[int],
                   column_names: Optional[Sequence[str]] = None,
                   charge_io: bool = True) -> List[Tuple[Value, ...]]:
        """Materialize rows by rid, charging one page read per distinct
        heap page touched (the classic RID-fetch cost)."""
        rids = np.asarray(rids, dtype=np.int64)
        self._check_rids(rids)
        names = list(column_names) if column_names is not None \
            else self.schema.column_names
        for name in names:
            self.schema.column(name)
        if charge_io and len(rids):
            pages = np.unique(rids // self.rows_per_page)
            self.buffer_manager.read_pages(
                self.object_id, (int(p) for p in pages))
        rows: List[Tuple[Value, ...]] = []
        cols = [self._columns[name] for name in names]
        for rid in rids:
            if not self._valid[rid]:
                continue
            rows.append(tuple(_to_python(col[rid]) for col in cols))
        return rows

    def scan_pages(self) -> int:
        """Charge a full sequential scan of the heap; returns page count."""
        n = self.n_pages
        self.buffer_manager.read_range(self.object_id, n)
        return n

    def live_rids(self) -> np.ndarray:
        return np.nonzero(self._valid[:self._size])[0]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _ensure_capacity(self, needed: int) -> None:
        capacity = len(self._valid)
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        for name, array in self._columns.items():
            grown = np.empty(new_capacity, dtype=array.dtype)
            grown[:self._size] = array[:self._size]
            self._columns[name] = grown
        grown_valid = np.zeros(new_capacity, dtype=bool)
        grown_valid[:self._size] = self._valid[:self._size]
        self._valid = grown_valid

    def _charge_write_pages(self, start_row: int, end_row: int) -> None:
        first = start_row // self.rows_per_page
        last = (end_row - 1) // self.rows_per_page
        for page in range(first, last + 1):
            self.buffer_manager.write_page((self.object_id, page))

    def _check_rids(self, rids: np.ndarray) -> None:
        if len(rids) and (rids.min() < 0 or rids.max() >= self._size):
            raise StorageError("row id out of range")

    def __repr__(self) -> str:
        return (f"HeapTable({self.schema.name!r}, rows={self.nrows}, "
                f"pages={self.n_pages})")


def _to_python(value) -> Value:
    """Convert a NumPy scalar to the matching Python value."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value

"""The engine's cost model.

Costs are expressed in deterministic *cost units*:

``units = page_reads * io_read_cost + page_writes * io_write_cost
        + cpu_ops * cpu_op_cost``

The same weights are used by the what-if optimizer (estimates) and by
the executor (metered actuals), so estimated EXEC/TRANS values and
measured replay times live on one scale. Page counts are *logical*
touches — deterministic and independent of buffer-pool history — while
the buffer manager separately tracks physical I/O for reporting.

Access paths:

* **full scan** — read every heap page, examine every row.
* **index seek** — descend the B+-tree using an equality prefix of the
  key (optionally followed by a range on the next key column), read the
  matching leaf pages, then fetch qualifying heap rows unless the index
  covers every referenced column.
* **index-only scan** — read the whole leaf level of a covering index
  instead of the (wider) heap. This path is what makes ``I(a,b)``
  preferable to ``I(a)`` under the paper's query mix A, and is required
  to reproduce Table 2.

Transitions (the paper's TRANS) price index builds as a heap scan plus
a sort plus writing every index page; drops cost a catalog touch.

Compression: a compressed structure's geometry reports fewer pages but
carries ``cpu_factor``/``build_cpu_factor`` inflation (decode on read,
encode on build). Every CPU charge below multiplies by the relevant
factor; at level NONE the factors are exactly ``1.0`` (and the insert
path's extra maintenance term exactly ``0.0``), so the uncompressed
cost model is *bitwise* the pre-compression one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from .index import IndexGeometry
from .stats import TableStats


@dataclass(frozen=True)
class CostParams:
    """Weights of the cost model.

    The defaults approximate a disk-resident system: a page read is
    thousands of times a per-row CPU operation, random row fetches pay
    an extra factor, and writes are costlier than reads.
    """

    io_read_cost: float = 1.0
    io_write_cost: float = 2.0
    random_io_factor: float = 2.5
    cpu_tuple_cost: float = 0.001
    cpu_index_tuple_cost: float = 0.0005
    cpu_sort_factor: float = 0.002
    #: Flat TRANS charge per dropped structure, in *cost units* (it is
    #: a catalog update, not a page-write count — see
    #: :func:`cost_drop_index`). Historically expressed as 10 page
    #: writes, which ``io_write_cost`` silently scaled to 20 units; the
    #: charge is now explicit and independent of the write weight.
    drop_index_cost: float = 20.0

    def units(self, page_reads: float, page_writes: float,
              cpu_ops: float) -> float:
        return (page_reads * self.io_read_cost +
                page_writes * self.io_write_cost + cpu_ops)


@dataclass(frozen=True)
class Cost:
    """A cost estimate with its breakdown.

    ``cpu_units`` is already weighted (cost units, not raw operation
    counts); the page counters are raw pages.
    """

    page_reads: float = 0.0
    page_writes: float = 0.0
    cpu_units: float = 0.0

    def total(self, params: CostParams) -> float:
        return params.units(self.page_reads, self.page_writes,
                            self.cpu_units)

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.page_reads + other.page_reads,
                    self.page_writes + other.page_writes,
                    self.cpu_units + other.cpu_units)


ZERO_COST = Cost()


def cost_full_scan(stats: TableStats, params: CostParams) -> Cost:
    """Sequentially read every heap page and examine every row."""
    return Cost(page_reads=float(stats.n_pages),
                cpu_units=stats.nrows * params.cpu_tuple_cost)


def cost_seek_entries(stats: TableStats, geometry: IndexGeometry,
                      key_selectivity: float,
                      params: CostParams) -> Cost:
    """Descend the tree and read the leaf entries a seek prefix
    selects — the index-side half of a seek, no heap access.

    This is the estimate of the :class:`~repro.sqlengine.plan.SeekIndex`
    plan operator.
    """
    matched = key_selectivity * stats.nrows
    reads = float(geometry.height)
    reads += geometry.leaf_pages_for(matched)
    cpu = matched * params.cpu_index_tuple_cost * geometry.cpu_factor
    return Cost(page_reads=reads, cpu_units=cpu)


def cost_heap_fetch(stats: TableStats, key_selectivity: float,
                    residual_selectivity: float,
                    params: CostParams) -> Cost:
    """Fetch the qualifying heap rows behind a non-covering seek — the
    estimate of the :class:`~repro.sqlengine.plan.FetchHeap` operator.

    ``residual_selectivity`` is the fraction of seek output that also
    passes predicates answerable from the index key (those filter
    entries before any heap fetch).
    """
    matched = key_selectivity * stats.nrows
    fetched = matched * residual_selectivity
    # Unclustered heap fetches: each qualifying row costs a random
    # page read, capped by the table size (big scans degrade to the
    # sequential bound).
    random_reads = min(fetched * params.random_io_factor,
                       float(stats.n_pages))
    return Cost(page_reads=random_reads,
                cpu_units=fetched * params.cpu_tuple_cost)


def cost_index_seek(stats: TableStats, geometry: IndexGeometry,
                    key_selectivity: float, covering: bool,
                    residual_selectivity: float,
                    params: CostParams) -> Cost:
    """Seek with an equality/range prefix selecting ``key_selectivity``
    of the rows; fetch heap rows unless ``covering``.

    Composition of :func:`cost_seek_entries` and (when not covering)
    :func:`cost_heap_fetch` — exactly the sum the plan IR's operator
    estimates produce for the same pipeline.
    """
    cost = cost_seek_entries(stats, geometry, key_selectivity, params)
    if not covering:
        cost = cost + cost_heap_fetch(stats, key_selectivity,
                                      residual_selectivity, params)
    return cost


def cost_index_only_scan(stats: TableStats, geometry: IndexGeometry,
                         params: CostParams) -> Cost:
    """Scan the full leaf level of a covering index (fewer leaf pages
    when compressed, decode CPU per entry)."""
    return Cost(page_reads=float(geometry.leaf_pages),
                cpu_units=stats.nrows * params.cpu_index_tuple_cost *
                geometry.cpu_factor)


def cost_build_index(stats: TableStats, geometry: IndexGeometry,
                     params: CostParams) -> Cost:
    """Build an index: scan the heap, sort (and, when compressed,
    encode) the entries, write the tree."""
    n = max(1, stats.nrows)
    sort_cpu = (params.cpu_sort_factor * n * math.log2(n + 1) / 1000.0
                * geometry.build_cpu_factor)
    return Cost(page_reads=float(stats.n_pages),
                page_writes=float(geometry.total_pages),
                cpu_units=sort_cpu)


def cost_drop_index(params: CostParams) -> Cost:
    """Drop an index or view: a catalog update plus page deallocation,
    charged *directly in cost units*.

    ``drop_index_cost`` is the intended TRANS charge itself, not a
    page-write count — the historical code charged it through
    ``page_writes``, silently scaling it by ``io_write_cost``, so the
    documented parameter and the charged units disagreed by 2x.
    """
    return Cost(cpu_units=params.drop_index_cost)


def cost_sort(n_rows: float, params: CostParams) -> Cost:
    """In-memory sort of ``n_rows`` result rows (ORDER BY without an
    order-providing access path)."""
    n = max(1.0, n_rows)
    return Cost(cpu_units=params.cpu_sort_factor * n *
                math.log2(n + 1))


def cost_view_scan(stats: TableStats, n_view_pages: int,
                   params: CostParams,
                   cpu_factor: float = 1.0) -> Cost:
    """Sequentially read every page of a projection view and examine
    every row (narrower pages than the base heap; ``cpu_factor``
    carries a compressed view's per-row decode inflation)."""
    return Cost(page_reads=float(n_view_pages),
                cpu_units=stats.nrows * params.cpu_tuple_cost *
                cpu_factor)


def cost_build_view(stats: TableStats, n_view_pages: int,
                    params: CostParams,
                    build_cpu_factor: float = 1.0) -> Cost:
    """Materialize a projection view: scan the heap, write the view
    pages — no sort, unlike an index build. ``build_cpu_factor``
    carries a compressed view's encode inflation."""
    return Cost(page_reads=float(stats.n_pages),
                page_writes=float(n_view_pages),
                cpu_units=stats.nrows * params.cpu_tuple_cost *
                build_cpu_factor)


def cost_insert(stats: TableStats, n_indexes: int,
                params: CostParams,
                extra_maintenance_cpu: float = 0.0) -> Cost:
    """Append one row and maintain each structure (descent + leaf
    write).

    ``extra_maintenance_cpu`` is the summed per-structure CPU
    *surcharge* factor from compression, i.e.
    ``sum(cpu_factor(s) - 1 for s in structures on the table)`` — an
    additive term so an all-NONE design (surcharge exactly ``0.0``)
    costs bitwise what it did before the compression axis.
    """
    return Cost(page_reads=float(n_indexes) * 2.0,
                page_writes=1.0 + n_indexes,
                cpu_units=(1 + n_indexes) * params.cpu_tuple_cost +
                extra_maintenance_cpu * params.cpu_tuple_cost)


@dataclass
class MeteredCost:
    """Mutable accumulator used by the executor; convertible to Cost."""

    page_reads: float = 0.0
    page_writes: float = 0.0
    cpu_units: float = 0.0
    rows_examined: int = 0
    rows_returned: int = 0

    def add_reads(self, pages: float) -> None:
        self.page_reads += pages

    def add_writes(self, pages: float) -> None:
        self.page_writes += pages

    def add_cpu(self, units: float) -> None:
        self.cpu_units += units

    def freeze(self) -> Cost:
        return Cost(self.page_reads, self.page_writes, self.cpu_units)

    def total(self, params: CostParams) -> float:
        return self.freeze().total(params)

"""Index definitions, page geometry, and materialized indexes.

An :class:`IndexDef` is the *logical* identity of an index — table name
plus ordered key columns. It is hashable and is the unit out of which
physical-design configurations are built (the paper's design structures).

:class:`IndexGeometry` captures the page-level shape of an index (entry
width, fanout, leaf pages, height) computed purely from row counts and
column widths. The same formulas serve both materialized indexes and
hypothetical (what-if) ones, so cost estimates are consistent whether or
not an index physically exists.

:class:`Index` is a materialized index: an ``IndexDef`` plus a live
B+-tree over a heap table, maintained on DML.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError
from .btree import BPlusTree
from .buffer import BufferManager
from .compression import Compression
from .schema import RID_BYTES, TableSchema
from .storage import HeapTable, PAGE_SIZE_BYTES

#: Per-entry overhead in an index page (slot pointer + alignment).
INDEX_ENTRY_OVERHEAD = 4


def structure_sort_key(definition
                       ) -> Tuple[str, str, Tuple[str, ...], int]:
    """Stable ordering across structure kinds (indexes, views).

    Anything with ``table`` and ``columns`` attributes sorts by
    ``(kind, table, columns, compression)``; indexes come before views
    because 'I' < 'V' via the class names, and compressed variants of
    one logical structure sort NONE < LIGHT < HEAVY. Spaces that use
    only NONE-level structures sort exactly as they did before the
    compression axis existed (the appended element is a constant 0).
    """
    compression = getattr(definition, "compression", Compression.NONE)
    return (type(definition).__name__, definition.table,
            definition.columns, int(compression))

#: Target fill factor of index pages after a build.
INDEX_FILL_FACTOR = 0.85


@dataclass(frozen=True, order=True)
class IndexDef:
    """Logical identity of a (possibly hypothetical) B+-tree index.

    Attributes:
        table: table the index is defined on.
        columns: ordered key columns, e.g. ``("a", "b")``.
        compression: the variant's :class:`Compression` level. Part of
            the definition's identity — ``I(a,b)`` and ``I(a,b)@H``
            are distinct candidates, catalog objects, and cache-key
            members. Defaults to NONE so every pre-compression call
            site builds the exact seed definition.
    """

    table: str
    columns: Tuple[str, ...]
    compression: Compression = Compression.NONE

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("an index needs at least one key column")
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(
                f"duplicate key column in index on {self.columns}")

    @property
    def label(self) -> str:
        """The paper's notation, e.g. ``I(a,b)`` (``I(a,b)@H`` when
        compressed)."""
        return (f"I({','.join(self.columns)})"
                f"{self.compression.suffix}")

    def covers(self, column_names: Sequence[str]) -> bool:
        """True if every referenced column is part of the index key.

        Such an index can answer the query with an index-only scan
        (no heap fetches). Compression never changes coverage — only
        the page/CPU trade-off of using the structure.
        """
        return set(column_names) <= set(self.columns)

    def with_compression(self, compression: Compression) -> "IndexDef":
        """The same logical index at another compression level."""
        return IndexDef(self.table, self.columns, compression)

    def default_name(self) -> str:
        name = f"ix_{self.table}_{'_'.join(self.columns)}"
        if self.compression is not Compression.NONE:
            name += f"_{self.compression.name.lower()}"
        return name

    def __str__(self) -> str:
        return self.label


def compressed_width(raw_width: int,
                     compression: Compression) -> int:
    """Entry/row width after compression, in whole bytes.

    NONE returns ``raw_width`` untouched — no float arithmetic at all,
    so NONE-level geometry is *bitwise* the pre-compression geometry,
    not merely numerically close.
    """
    if compression is Compression.NONE:
        return raw_width
    return max(1, math.ceil(raw_width * compression.page_fraction))


@dataclass(frozen=True)
class IndexGeometry:
    """Page-level shape of an index over ``nrows`` rows.

    Derived deterministically from the schema, so hypothetical and
    materialized indexes cost identically. ``cpu_factor`` and
    ``build_cpu_factor`` carry the compression level's decode/encode
    inflation into the cost model (both exactly ``1.0`` at NONE).
    """

    nrows: int
    entry_width: int
    entries_per_page: int
    leaf_pages: int
    height: int
    total_pages: int
    cpu_factor: float = 1.0
    build_cpu_factor: float = 1.0

    @classmethod
    def compute(cls, schema: TableSchema, columns: Sequence[str],
                nrows: int,
                compression: Compression = Compression.NONE
                ) -> "IndexGeometry":
        entry_width = compressed_width(
            schema.width_of(columns) + RID_BYTES + INDEX_ENTRY_OVERHEAD,
            compression)
        usable = PAGE_SIZE_BYTES * INDEX_FILL_FACTOR
        entries_per_page = max(2, int(usable // entry_width))
        leaf_pages = max(1, math.ceil(nrows / entries_per_page)) \
            if nrows else 1
        # Internal fanout: separators are key-only entries (compressed
        # alongside the leaf entries).
        sep_width = compressed_width(
            schema.width_of(columns) + RID_BYTES, compression)
        fanout = max(2, int(usable // sep_width))
        height = 1
        level_pages = leaf_pages
        total = leaf_pages
        while level_pages > 1:
            level_pages = math.ceil(level_pages / fanout)
            total += level_pages
            height += 1
        return cls(nrows=nrows, entry_width=entry_width,
                   entries_per_page=entries_per_page,
                   leaf_pages=leaf_pages, height=height,
                   total_pages=total,
                   cpu_factor=compression.cpu_factor,
                   build_cpu_factor=compression.build_cpu_factor)

    @property
    def size_bytes(self) -> int:
        return self.total_pages * PAGE_SIZE_BYTES

    def leaf_pages_for(self, n_entries: float) -> int:
        """Leaf pages touched when reading ``n_entries`` consecutive
        entries (at least one page if any entries are read)."""
        if n_entries <= 0:
            return 0
        return max(1, math.ceil(n_entries / self.entries_per_page))


class Index:
    """A materialized B+-tree index over a heap table.

    Args:
        definition: the logical index identity.
        table: the heap table being indexed.
        buffer_manager: pool used to meter this index's page I/O.
        name: catalog name (defaults to a generated one).
    """

    def __init__(self, definition: IndexDef, table: HeapTable,
                 buffer_manager: BufferManager,
                 name: Optional[str] = None):
        if definition.table != table.schema.name:
            raise SchemaError(
                f"index on {definition.table!r} cannot attach to table "
                f"{table.schema.name!r}")
        for column in definition.columns:
            table.schema.column(column)
        self.definition = definition
        self.name = name or definition.default_name()
        self.table = table
        self.buffer_manager = buffer_manager
        self.object_id = buffer_manager.allocate_object_id()
        self.tree = BPlusTree()
        # Columnar mirror of the leaf level (sorted key columns + rids),
        # kept for vectorized scans; rebuilt lazily after DML.
        self._leaf_cols: Dict[str, np.ndarray] = {}
        self._leaf_rids = np.empty(0, dtype=np.int64)
        self._mirror_dirty = False
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        """Bulk-build the tree: scan the heap, sort, load bottom-up.

        Charges the classic build cost: one full heap scan plus one
        sequential write of every index page.

        Fault sites: the ``index_build`` hook fires at build entry and
        once per leaf chunk of the bulk load; every page touch is also
        a ``page_read``/``page_write`` site. A fault anywhere aborts
        with the tree unassigned — atomicity (catalog, buffer,
        metrics) is the caller's job via
        :meth:`Database._transition`.
        """
        injector = self.buffer_manager.fault_injector
        fault_hook = None
        if injector is not None:
            label = self.definition.label

            def fault_hook() -> None:
                injector.on_build_step("index_build", label,
                                       self.buffer_manager.metrics)

            fault_hook()
        self.table.scan_pages()
        rids = self.table.live_rids()
        key_columns = [self.table.column_array(c)
                       for c in self.definition.columns]
        if len(rids):
            key_matrix = [col[rids] for col in key_columns]
            order = np.lexsort(tuple(reversed(key_matrix)))
            pairs = []
            sorted_rids = rids[order]
            sorted_cols = [col[order] for col in key_matrix]
            for i in range(len(sorted_rids)):
                key = tuple(_scalar(col[i]) for col in sorted_cols)
                pairs.append((key, int(sorted_rids[i])))
            self.tree.bulk_load(pairs, fault_hook=fault_hook)
            self._leaf_cols = dict(zip(self.definition.columns,
                                       sorted_cols))
            self._leaf_rids = sorted_rids.astype(np.int64)
        else:
            self._leaf_cols = {c: np.empty(0, dtype=col.dtype)
                               for c, col in zip(self.definition.columns,
                                                 key_columns)}
            self._leaf_rids = np.empty(0, dtype=np.int64)
        self._mirror_dirty = False
        geometry = self.geometry()
        for page in range(geometry.total_pages):
            self.buffer_manager.write_page((self.object_id, page))

    # ------------------------------------------------------------------
    # geometry / metering
    # ------------------------------------------------------------------

    def geometry(self) -> IndexGeometry:
        return IndexGeometry.compute(self.table.schema,
                                     self.definition.columns,
                                     len(self.tree),
                                     self.definition.compression)

    def charge_descent(self) -> None:
        """Meter a root-to-leaf descent (one page per level)."""
        geometry = self.geometry()
        for level in range(geometry.height):
            self.buffer_manager.read_page((self.object_id, level))

    def charge_leaf_pages(self, n_entries: int) -> int:
        """Meter reading ``n_entries`` consecutive leaf entries."""
        geometry = self.geometry()
        pages = geometry.leaf_pages_for(n_entries)
        # Leaf pages are addressed after the descent levels to keep
        # page ids distinct between the two kinds of touches.
        base = geometry.height
        self.buffer_manager.read_pages(
            self.object_id, range(base, base + pages))
        return pages

    def charge_full_leaf_scan(self) -> int:
        geometry = self.geometry()
        base = geometry.height
        self.buffer_manager.read_pages(
            self.object_id, range(base, base + geometry.leaf_pages))
        return geometry.leaf_pages

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def key_for_rid(self, rid: int) -> Tuple:
        return tuple(_scalar(self.table.column_array(c)[rid])
                     for c in self.definition.columns)

    def seek_equal(self, prefix: Tuple) -> List[Tuple[Tuple, int]]:
        """All ``(key, rid)`` whose key starts with ``prefix``."""
        return self.tree.search_prefix(prefix)

    def range(self, lo, hi, lo_inclusive: bool = True,
              hi_inclusive: bool = True) -> List[Tuple[Tuple, int]]:
        return self.tree.range_scan(lo, hi, lo_inclusive, hi_inclusive)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def on_insert(self, rid: int) -> None:
        self.tree.insert(self.key_for_rid(rid), rid)
        self._mirror_dirty = True
        self.buffer_manager.write_page((self.object_id, 0))

    def on_delete(self, rid: int) -> None:
        self.tree.delete(self.key_for_rid(rid), rid)
        self._mirror_dirty = True
        self.buffer_manager.write_page((self.object_id, 0))

    def on_update(self, rid: int, old_key: Tuple) -> None:
        new_key = self.key_for_rid(rid)
        if new_key == old_key:
            return
        self.tree.delete(old_key, rid)
        self.tree.insert(new_key, rid)
        self._mirror_dirty = True
        self.buffer_manager.write_page((self.object_id, 0))

    # ------------------------------------------------------------------
    # vectorized leaf access
    # ------------------------------------------------------------------

    def leaf_arrays(self) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Columnar view of the sorted leaf level: ``(key columns, rids)``.

        This is an in-memory acceleration structure; page charging is
        the caller's job (via :meth:`charge_leaf_pages` etc.). Rebuilt
        lazily from the tree after DML.
        """
        if self._mirror_dirty:
            self._rebuild_mirror()
        return self._leaf_cols, self._leaf_rids

    def _rebuild_mirror(self) -> None:
        entries = list(self.tree.items())
        n_cols = len(self.definition.columns)
        dtypes = [self.table.schema.column(c).ctype.numpy_dtype
                  for c in self.definition.columns]
        cols = {name: np.empty(len(entries), dtype=dtype)
                for name, dtype in zip(self.definition.columns, dtypes)}
        rids = np.empty(len(entries), dtype=np.int64)
        for i, (key, rid) in enumerate(entries):
            for j in range(n_cols):
                cols[self.definition.columns[j]][i] = key[j]
            rids[i] = rid
        self._leaf_cols = cols
        self._leaf_rids = rids
        self._mirror_dirty = False

    def __repr__(self) -> str:
        return (f"Index({self.definition.label}, name={self.name!r}, "
                f"entries={len(self.tree)})")


def _scalar(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value

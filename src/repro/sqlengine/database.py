"""The embedded database facade.

:class:`Database` owns the catalog (tables, indexes, materialized
views), the shared buffer pool, statistics, and the what-if optimizer.
It executes SQL text or pre-parsed ASTs, and exposes the
physical-design operations the advisor layer needs: materializing and
dropping structures, applying whole configurations, and costing
statements under hypothetical designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import (CatalogError, SqlUnsupportedError, StorageError,
                      TransientStorageError, TransitionError)
from ..faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .buffer import BufferManager, IoMetrics
from .costmodel import CostParams, MeteredCost
from .executor import Executor, QueryResult
from .index import Index, IndexDef, structure_sort_key
from .schema import TableSchema
from .sql.ast import (CreateIndexStmt, CreateTableStmt, DeleteStmt,
                      DropIndexStmt, DropTableStmt, InsertStmt, SelectStmt,
                      Statement, UpdateStmt)
from .sql.parser import parse
from .stats import TableStats
from .storage import HeapTable
from .types import ColumnType, parse_column_type
from .views import MaterializedView, ViewDef
from .whatif import PlanEstimate, WhatIfOptimizer


@dataclass
class TransitionReport:
    """What happened when a configuration was applied."""

    created: List[IndexDef]
    dropped: List[IndexDef]
    metered: MeteredCost

    def units(self, params: CostParams) -> float:
        return self.metered.total(params)


@dataclass
class GroundTruthExecution:
    """One statement actually executed, with its I/O ground truth.

    The verification harness compares what-if *estimates* against
    these: the deterministic metered cost units and the buffer
    manager's raw :class:`IoMetrics` delta for the statement.

    Attributes:
        result: rows plus metered cost (``result.access_path`` names
            the access path the executor actually took).
        io: buffer-pool counter movement (logical/physical reads,
            writes) attributable to this statement.
    """

    result: QueryResult
    io: IoMetrics

    def units(self, params: CostParams) -> float:
        return self.result.units(params)

    @property
    def access_kind(self) -> str:
        path = self.result.access_path
        return path.kind if path is not None else "other"


class Database:
    """An embedded single-node database instance.

    Args:
        params: cost-model weights shared by planner, executor and
            what-if optimizer.
        buffer_capacity_pages: buffer pool size.
        fault_injector: optional
            :class:`~repro.faults.injector.FaultInjector`; None
            (default) keeps the fault machinery entirely out of the
            hot paths.
        retry_policy: how transient faults are retried (shared by the
            buffer pool and the transition machinery).
    """

    def __init__(self, params: Optional[CostParams] = None,
                 buffer_capacity_pages: int = 8192,
                 fault_injector=None,
                 retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY):
        self.params = params or CostParams()
        self.retry_policy = retry_policy
        self.buffer_manager = BufferManager(
            capacity_pages=buffer_capacity_pages,
            fault_injector=fault_injector,
            retry_policy=retry_policy)
        self.tables: Dict[str, HeapTable] = {}
        self.indexes_by_name: Dict[str, Index] = {}
        self.views_by_name: Dict[str, MaterializedView] = {}
        self._stats_cache: Dict[str, TableStats] = {}

    @property
    def fault_injector(self):
        return self.buffer_manager.fault_injector

    def set_fault_injector(self, injector) -> None:
        """Attach (or with None, detach) a fault injector. All engine
        fault sites read it through the shared buffer manager."""
        self.buffer_manager.fault_injector = injector

    # ------------------------------------------------------------------
    # DDL / loading
    # ------------------------------------------------------------------

    def create_table(self, name: str,
                     columns: Sequence[Tuple[str, Union[str, ColumnType]]]
                     ) -> HeapTable:
        """Create a table from ``(name, type)`` pairs."""
        if name in self.tables:
            raise CatalogError(f"table {name!r} already exists")
        typed = [(c, t if isinstance(t, ColumnType)
                  else parse_column_type(t)) for c, t in columns]
        schema = TableSchema.build(name, typed)
        table = HeapTable(schema, self.buffer_manager)
        self.tables[name] = table
        self._stats_cache.pop(name, None)
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table and every dependent structure.

        Dependent indexes and views are dropped first (each
        invalidating its buffer pages), then the heap itself — so no
        structure can outlive its base table and
        :meth:`current_configuration` never reports a dangling
        definition. Compressed variants are ordinary catalog entries
        and need no special casing here.
        """
        table = self.table(name)
        for index in list(self.indexes_for(name)):
            self.drop_index(index.name)
        for view in list(self.views_for(name)):
            self.drop_view(view.name)
        self.buffer_manager.invalidate_object(table.object_id)
        del self.tables[name]
        self._stats_cache.pop(name, None)

    def bulk_load(self, table_name: str,
                  columns: Dict[str, Sequence]) -> int:
        """Bulk-append column data; refreshes stats lazily."""
        table = self.table(table_name)
        loaded = table.bulk_load(columns)
        self._stats_cache.pop(table_name, None)
        failed: List[str] = []
        for index in list(self.indexes_for(table_name)):
            # Rebuild rather than insert row-by-row: bulk loads after
            # index creation are rare and rebuild matches real engines'
            # fast-load paths.
            try:
                self._transition(index.definition.label, index._build)
            except TransitionError:
                # A stale index would silently return wrong rows;
                # dropping it keeps the catalog consistent (the
                # structure can be re-created once the fault clears).
                self.drop_index(index.name)
                failed.append(index.definition.label)
        for view in list(self.views_for(table_name)):
            try:
                self._transition(view.definition.label, view._build)
            except TransitionError:
                self.drop_view(view.name)
                failed.append(view.definition.label)
        if failed:
            raise TransitionError(
                f"bulk load of {table_name!r} succeeded but rebuilding "
                f"{', '.join(failed)} failed; the structures were "
                f"dropped", structure=",".join(failed))
        return loaded

    def _transition(self, label: str, build):
        """Run a structure build atomically under fault injection.

        With no injector attached this is a plain call — zero
        overhead. With one attached, the buffer pool (cache contents,
        object-id cursor, data-plane metrics) is checkpointed first;
        a mid-build :class:`StorageError` rolls everything back to
        exactly the checkpoint, transient failures are retried under
        the retry policy (backoff charged as latency units), and
        exhausted or permanent failures surface as
        :class:`TransitionError` — always from the pre-build state.
        """
        injector = self.buffer_manager.fault_injector
        if injector is None:
            return build()
        checkpoint = self.buffer_manager.save_state()
        attempt = 1
        while True:
            try:
                return build()
            except StorageError as exc:
                self.buffer_manager.restore_state(checkpoint)
                self.buffer_manager.metrics.rollbacks += 1
                retryable = isinstance(exc, TransientStorageError)
                if not retryable or \
                        attempt >= self.retry_policy.max_attempts:
                    raise TransitionError(
                        f"building {label} failed after {attempt} "
                        f"attempt(s): {exc}", structure=label,
                        attempts=attempt) from exc
                self.buffer_manager.metrics.retries += 1
                self.buffer_manager.metrics.latency_units += \
                    self.retry_policy.backoff_for(attempt)
                attempt += 1

    def create_index(self, definition: IndexDef,
                     name: Optional[str] = None) -> Index:
        """Materialize an index (charges its build I/O).

        Atomic under faults: a build that cannot complete raises
        :class:`TransitionError` with catalog and buffer state exactly
        as before the call.
        """
        table = self.table(definition.table)
        if self.find_index(definition) is not None:
            raise CatalogError(
                f"index {definition.label} already exists")
        catalog_name = name or definition.default_name()
        if catalog_name in self.indexes_by_name:
            raise CatalogError(f"index name {catalog_name!r} in use")
        index = self._transition(
            definition.label,
            lambda: Index(definition, table, self.buffer_manager,
                          name))
        self.indexes_by_name[index.name] = index
        return index

    def drop_index(self, name: str) -> None:
        index = self.indexes_by_name.pop(name, None)
        if index is None:
            raise CatalogError(f"unknown index {name!r}")
        self.buffer_manager.invalidate_object(index.object_id)

    def create_view(self, definition: ViewDef,
                    name: Optional[str] = None) -> MaterializedView:
        """Materialize a projection view (charges its build I/O).

        Atomic under faults, like :meth:`create_index`.
        """
        table = self.table(definition.table)
        if self.find_view(definition) is not None:
            raise CatalogError(
                f"view {definition.label} already exists")
        catalog_name = name or definition.default_name()
        if catalog_name in self.views_by_name:
            raise CatalogError(f"view name {catalog_name!r} in use")
        view = self._transition(
            definition.label,
            lambda: MaterializedView(definition, table,
                                     self.buffer_manager, name))
        self.views_by_name[view.name] = view
        return view

    def drop_view(self, name: str) -> None:
        view = self.views_by_name.pop(name, None)
        if view is None:
            raise CatalogError(f"unknown view {name!r}")
        self.buffer_manager.invalidate_object(view.object_id)

    # ------------------------------------------------------------------
    # catalog accessors
    # ------------------------------------------------------------------

    def table(self, name: str) -> HeapTable:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def indexes_for(self, table_name: str) -> List[Index]:
        return [ix for ix in self.indexes_by_name.values()
                if ix.definition.table == table_name]

    def find_index(self, definition: IndexDef) -> Optional[Index]:
        for index in self.indexes_by_name.values():
            if index.definition == definition:
                return index
        return None

    def views_for(self, table_name: str) -> List[MaterializedView]:
        return [v for v in self.views_by_name.values()
                if v.definition.table == table_name]

    def find_view(self, definition: ViewDef
                  ) -> Optional[MaterializedView]:
        for view in self.views_by_name.values():
            if view.definition == definition:
                return view
        return None

    def current_configuration(self,
                              table_name: Optional[str] = None
                              ) -> frozenset:
        """The set of materialized structures (indexes and views)."""
        defs = [ix.definition for ix in self.indexes_by_name.values()
                if table_name is None or
                ix.definition.table == table_name]
        defs.extend(v.definition for v in self.views_by_name.values()
                    if table_name is None or
                    v.definition.table == table_name)
        return frozenset(defs)

    def stats(self, table_name: str) -> TableStats:
        cached = self._stats_cache.get(table_name)
        if cached is None or cached.nrows != self.table(table_name).nrows:
            cached = TableStats.from_table(self.table(table_name))
            self._stats_cache[table_name] = cached
        return cached

    def refresh_stats(self) -> None:
        self._stats_cache.clear()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, statement: Union[str, Statement]) -> QueryResult:
        """Execute SQL text or a parsed statement."""
        stmt = parse(statement) if isinstance(statement, str) \
            else statement
        if isinstance(stmt, CreateTableStmt):
            self.create_table(stmt.table, list(stmt.columns))
            return QueryResult(rows=[], metrics=MeteredCost())
        if isinstance(stmt, CreateIndexStmt):
            definition = IndexDef(stmt.table, stmt.columns)
            before = self.buffer_manager.snapshot()
            self.create_index(definition, stmt.name)
            delta = self.buffer_manager.snapshot() - before
            metered = MeteredCost(page_reads=delta.logical_reads,
                                  page_writes=delta.physical_writes)
            return QueryResult(rows=[], metrics=metered)
        if isinstance(stmt, DropIndexStmt):
            self.drop_index(stmt.name)
            # Flat catalog-update charge, directly in cost units
            # (matching cost_drop_index — not a page-write count).
            return QueryResult(rows=[], metrics=MeteredCost(
                cpu_units=self.params.drop_index_cost))
        if isinstance(stmt, DropTableStmt):
            self.drop_table(stmt.table)
            return QueryResult(rows=[], metrics=MeteredCost())
        if isinstance(stmt, SelectStmt):
            executor = self._executor_for(stmt.table)
            return executor.execute_select(stmt, self.stats(stmt.table))
        if isinstance(stmt, InsertStmt):
            executor = self._executor_for(stmt.table)
            result = executor.execute_insert(stmt)
            self._stats_cache.pop(stmt.table, None)
            return result
        if isinstance(stmt, UpdateStmt):
            executor = self._executor_for(stmt.table)
            result = executor.execute_update(stmt, self.stats(stmt.table))
            self._stats_cache.pop(stmt.table, None)
            return result
        if isinstance(stmt, DeleteStmt):
            executor = self._executor_for(stmt.table)
            result = executor.execute_delete(stmt, self.stats(stmt.table))
            self._stats_cache.pop(stmt.table, None)
            return result
        raise SqlUnsupportedError(
            f"cannot execute {type(stmt).__name__}")

    def execute_metered(self, statement: Union[str, Statement]
                        ) -> GroundTruthExecution:
        """Execute a statement and capture its I/O ground truth.

        Ground-truth replay hook for the verification harness
        (:mod:`repro.verify`): runs the statement through the normal
        executor while snapshotting the buffer pool around it, so the
        caller gets both the deterministic metered cost and the raw
        buffer-level :class:`IoMetrics` delta to hold the cost model's
        estimates against.
        """
        before = self.buffer_manager.snapshot()
        result = self.execute(statement)
        return GroundTruthExecution(
            result=result,
            io=self.buffer_manager.snapshot() - before)

    def query(self, sql: str) -> List[Tuple]:
        """Convenience: execute a SELECT and return just the rows."""
        return self.execute(sql).rows

    def plan(self, statement: Union[str, Statement]):
        """The access path (with its physical-plan tree) the executor
        would run for a SELECT under the *current* catalog, without
        executing it."""
        stmt = parse(statement) if isinstance(statement, str) \
            else statement
        if not isinstance(stmt, SelectStmt):
            raise SqlUnsupportedError(
                "plans exist only for SELECT statements")
        executor = self._executor_for(stmt.table)
        return executor.plan_select(stmt, self.stats(stmt.table))

    def explain(self, statement: Union[str, Statement],
                config: Optional[Iterable[IndexDef]] = None) -> str:
        """Render the costed plan tree for a SELECT.

        With ``config`` the statement is planned against that
        *hypothetical* configuration (what-if catalog substitution);
        otherwise against the materialized catalog. Either way the tree
        shown is the literal plan object the executor would interpret.
        """
        stmt = parse(statement) if isinstance(statement, str) \
            else statement
        if not isinstance(stmt, SelectStmt):
            raise SqlUnsupportedError(
                "EXPLAIN supports only SELECT statements")
        if config is None:
            path = self.plan(stmt)
        else:
            path = self.what_if().estimate_statement(
                stmt, config).access_path
        stats = self.stats(stmt.table)
        header = path.describe(self.params)
        return header + "\n" + path.plan.explain(stats, self.params)

    def _executor_for(self, table_name: str) -> Executor:
        table = self.table(table_name)
        indexes = {ix.definition: ix
                   for ix in self.indexes_for(table_name)}
        views = {v.definition: v for v in self.views_for(table_name)}
        return Executor(table, indexes, self.buffer_manager,
                        self.params, views=views)

    # ------------------------------------------------------------------
    # physical design operations
    # ------------------------------------------------------------------

    def what_if(self) -> WhatIfOptimizer:
        """A what-if optimizer snapshotting current schemas and stats.

        Inherits the database's fault injector (if any), so estimate
        faults fire for what-if consumers too.
        """
        schemas = {name: t.schema for name, t in self.tables.items()}
        stats = {name: self.stats(name) for name in self.tables}
        return WhatIfOptimizer(
            schemas, stats, self.params,
            fault_injector=self.buffer_manager.fault_injector)

    def estimate(self, statement: Union[str, Statement],
                 config: Iterable[IndexDef]) -> PlanEstimate:
        """One-off what-if estimate (prefer reusing :meth:`what_if`)."""
        stmt = parse(statement) if isinstance(statement, str) \
            else statement
        return self.what_if().estimate_statement(stmt, config)

    def apply_configuration(self, config: Iterable[IndexDef],
                            table_name: Optional[str] = None
                            ) -> TransitionReport:
        """Create/drop indexes until the materialized design equals
        ``config`` (restricted to ``table_name`` if given)."""
        target = frozenset(config)
        current = self.current_configuration(table_name)
        before = self.buffer_manager.snapshot()
        dropped: List[IndexDef] = []
        created: List[IndexDef] = []
        drop_units = 0.0
        for definition in sorted(current - target,
                                 key=structure_sort_key):
            if isinstance(definition, ViewDef):
                view = self.find_view(definition)
                if view is None:
                    raise CatalogError(
                        f"view {definition.label} vanished while "
                        f"applying a configuration")
                self.drop_view(view.name)
            else:
                index = self.find_index(definition)
                if index is None:
                    raise CatalogError(
                        f"index {definition.label} vanished while "
                        f"applying a configuration")
                self.drop_index(index.name)
            dropped.append(definition)
            # Flat catalog-update charge in cost units, matching
            # cost_drop_index (charging it as page writes would scale
            # it by io_write_cost).
            drop_units += self.params.drop_index_cost
        for definition in sorted(target - current,
                                 key=structure_sort_key):
            try:
                if isinstance(definition, ViewDef):
                    self.create_view(definition)
                else:
                    self.create_index(definition)
            except TransitionError as exc:
                # Each structure is individually atomic: everything
                # built before the failing one stands; the failing one
                # left no trace. Attach the partial report so callers
                # can account for the work that did happen.
                exc.report = self._transition_report(
                    created, dropped, before, drop_units)
                raise
            created.append(definition)
        return self._transition_report(created, dropped, before,
                                       drop_units)

    def deploy(self, plan) -> "DeploymentReport":
        """Execute a scheduled :class:`~repro.core.deployment.
        DeploymentPlan` — the ordered, resumable form of
        :meth:`apply_configuration` (each step individually atomic
        via :meth:`_transition`; already-satisfied steps skipped)."""
        from ..core.deployment import execute_deployment
        return execute_deployment(self, plan)

    def _transition_report(self, created, dropped, before: IoMetrics,
                           drop_units: float) -> TransitionReport:
        delta = self.buffer_manager.snapshot() - before
        # Retry backoff / slow-I/O latency charges land on cpu_units:
        # they are already expressed in cost units (zero when faults
        # are off, so the fault-free metering is unchanged).
        metered = MeteredCost(
            page_reads=float(delta.logical_reads),
            page_writes=float(delta.physical_writes),
            cpu_units=drop_units + delta.latency_units)
        return TransitionReport(created=list(created),
                                dropped=list(dropped),
                                metered=metered)

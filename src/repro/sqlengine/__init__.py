"""The embedded SQL engine substrate.

Everything the paper's experiments needed from SQL Server, rebuilt:
page-organized heap storage, B+-tree indexes, a SQL subset front end,
statistics, a cost model, a single physical-plan IR shared by the
planner / executor / what-if optimizer, and a metered executor.
"""

from .buffer import BufferManager, IoMetrics
from .btree import BPlusTree
from .costmodel import Cost, CostParams, MeteredCost
from .database import (Database, GroundTruthExecution,
                       TransitionReport)
from .executor import Executor, QueryResult
from .index import Index, IndexDef, IndexGeometry
from .plan import (Aggregate, FetchHeap, Filter, GroupAggregate,
                   PlanNode, PlanRuntime, Project, ScanHeap,
                   ScanIndexLeaf, ScanView, SeekIndex, Sort)
from .planner import (AccessPath, QueryInfo, analyze_select,
                      choose_access_path, enumerate_access_paths)
from .schema import Column, TableSchema
from .sql import parse
from .stats import ColumnStats, EquiDepthHistogram, TableStats
from .storage import HeapTable, PAGE_SIZE_BYTES
from .types import ColumnType, Value
from .views import MaterializedView, ViewDef, ViewGeometry
from .whatif import (PlanEstimate, StatementTemplate,
                     WhatIfOptimizer)

__all__ = [
    "BufferManager", "IoMetrics", "BPlusTree", "Cost", "CostParams",
    "MeteredCost", "Database", "GroundTruthExecution",
    "TransitionReport", "Executor",
    "QueryResult", "Index", "IndexDef", "IndexGeometry", "PlanNode",
    "PlanRuntime", "ScanHeap", "SeekIndex", "ScanIndexLeaf",
    "ScanView", "Filter", "FetchHeap", "Sort", "Project", "Aggregate",
    "GroupAggregate", "AccessPath",
    "QueryInfo", "analyze_select", "choose_access_path",
    "enumerate_access_paths", "Column", "TableSchema", "parse",
    "ColumnStats", "EquiDepthHistogram", "TableStats", "HeapTable",
    "PAGE_SIZE_BYTES", "ColumnType", "Value", "PlanEstimate",
    "WhatIfOptimizer", "StatementTemplate", "MaterializedView",
    "ViewDef", "ViewGeometry",
]

"""Column types and value handling for the embedded engine.

The engine supports a deliberately small set of column types — enough to
model the paper's experimental schema (four integer columns) plus the
types needed by realistic example workloads (floats and short strings).

Each type knows its on-page byte width, its NumPy storage dtype, and how
to validate / coerce Python values. Widths feed the cost model's page
geometry, which is what ultimately drives the physical-design decisions.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, Union

import numpy as np

from ..errors import TypeMismatchError

#: Python-side value type stored in a column.
Value = Union[int, float, str]


class ColumnType(enum.Enum):
    """Supported column types.

    The enum value is the SQL spelling used by the parser and by
    ``CREATE TABLE`` round-trips.
    """

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"

    @property
    def byte_width(self) -> int:
        """On-page width in bytes of one value of this type."""
        return _BYTE_WIDTHS[self]

    @property
    def numpy_dtype(self) -> np.dtype:
        """NumPy dtype used by the column store for this type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.BIGINT,
                        ColumnType.FLOAT)

    def validate(self, value: Any) -> Value:
        """Coerce ``value`` to this type, raising on a mismatch.

        Booleans are rejected for numeric columns (they are ``int``
        subclasses but almost always indicate a caller bug).
        """
        if isinstance(value, bool):
            raise TypeMismatchError(
                f"boolean value {value!r} is not valid for {self.value}")
        if self is ColumnType.INTEGER or self is ColumnType.BIGINT:
            if isinstance(value, (int, np.integer)):
                return int(value)
            raise TypeMismatchError(
                f"expected an integer for {self.value}, got {value!r}")
        if self is ColumnType.FLOAT:
            if isinstance(value, (int, float, np.integer, np.floating)):
                return float(value)
            raise TypeMismatchError(
                f"expected a number for FLOAT, got {value!r}")
        if self is ColumnType.TEXT:
            if isinstance(value, str):
                if len(value) > TEXT_MAX_CHARS:
                    raise TypeMismatchError(
                        f"TEXT value longer than {TEXT_MAX_CHARS} chars")
                return value
            raise TypeMismatchError(
                f"expected a string for TEXT, got {value!r}")
        raise TypeMismatchError(f"unhandled column type {self!r}")


#: Maximum length of a TEXT value; TEXT columns are fixed-width CHAR(32)
#: on page, which keeps page geometry simple and deterministic.
TEXT_MAX_CHARS = 32

_BYTE_WIDTHS = {
    ColumnType.INTEGER: 4,
    ColumnType.BIGINT: 8,
    ColumnType.FLOAT: 8,
    ColumnType.TEXT: TEXT_MAX_CHARS,
}

_NUMPY_DTYPES = {
    ColumnType.INTEGER: np.dtype(np.int64),
    ColumnType.BIGINT: np.dtype(np.int64),
    ColumnType.FLOAT: np.dtype(np.float64),
    ColumnType.TEXT: np.dtype(f"U{TEXT_MAX_CHARS}"),
}


def parse_column_type(spelling: str) -> ColumnType:
    """Map a SQL type spelling (case-insensitive) to a :class:`ColumnType`.

    Accepts common aliases (``INT``, ``VARCHAR``, ``DOUBLE``, ...).
    """
    normalized = spelling.strip().upper()
    aliases = {
        "INT": ColumnType.INTEGER,
        "INTEGER": ColumnType.INTEGER,
        "BIGINT": ColumnType.BIGINT,
        "FLOAT": ColumnType.FLOAT,
        "DOUBLE": ColumnType.FLOAT,
        "REAL": ColumnType.FLOAT,
        "TEXT": ColumnType.TEXT,
        "VARCHAR": ColumnType.TEXT,
        "CHAR": ColumnType.TEXT,
        "STRING": ColumnType.TEXT,
    }
    if normalized not in aliases:
        raise TypeMismatchError(f"unknown column type {spelling!r}")
    return aliases[normalized]


def compare_values(left: Value, right: Value) -> int:
    """Three-way comparison usable for heterogeneous numeric values.

    Returns -1, 0, or 1. Strings compare only with strings; numbers only
    with numbers.
    """
    left_is_str = isinstance(left, str)
    right_is_str = isinstance(right, str)
    if left_is_str != right_is_str:
        raise TypeMismatchError(
            f"cannot compare {left!r} with {right!r}")
    if left < right:  # type: ignore[operator]
        return -1
    if left > right:  # type: ignore[operator]
        return 1
    return 0


def coerce_for_column(value: Any, ctype: ColumnType) -> Optional[Value]:
    """Validate ``value`` against ``ctype``; ``None`` passes through.

    The engine does not index NULLs and the supported predicates never
    match them, mirroring the usual SQL three-valued comparison rules at
    the level of detail the paper's workloads need.
    """
    if value is None:
        return None
    return ctype.validate(value)

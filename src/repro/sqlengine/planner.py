"""Query analysis and access-path planning.

The planner analyzes a ``SELECT`` into a :class:`QueryInfo`, enumerates
the feasible access paths for a given set of (real or hypothetical)
indexes, and picks the cheapest. Each access path is realized as a
:mod:`.plan` operator tree; its cost is whatever the tree's own
:meth:`~repro.sqlengine.plan.PlanNode.estimate` says, and the executor
runs the *same* tree — so the what-if optimizer and the executor can
never cost or pick different plans. :class:`AccessPath` survives as a
thin façade over the plan root (kind/index/cost summary attributes the
advisor and the reports key on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PlanningError, SchemaError, SqlUnsupportedError
from .costmodel import Cost, CostParams
from .index import IndexDef, IndexGeometry, structure_sort_key
from .plan import (Aggregate, FetchHeap, Filter, GroupAggregate, PlanNode,
                   Project, ScanHeap, ScanIndexLeaf, ScanView, SeekIndex,
                   Sort)
from .schema import TableSchema
from .sql.ast import Between, Comparison, OrderBy, SelectStmt
from .stats import TableStats, combined_selectivity
from .types import Value
from .views import ViewDef, ViewGeometry


@dataclass(frozen=True)
class RangeSpec:
    """A (possibly half-open) interval constraint on one column."""

    lo: Optional[Value] = None
    hi: Optional[Value] = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True

    def intersect(self, other: "RangeSpec") -> "RangeSpec":
        lo, lo_inc = self.lo, self.lo_inclusive
        if other.lo is not None and (lo is None or other.lo > lo or
                                     (other.lo == lo and
                                      not other.lo_inclusive)):
            lo, lo_inc = other.lo, other.lo_inclusive
        hi, hi_inc = self.hi, self.hi_inclusive
        if other.hi is not None and (hi is None or other.hi < hi or
                                     (other.hi == hi and
                                      not other.hi_inclusive)):
            hi, hi_inc = other.hi, other.hi_inclusive
        return RangeSpec(lo, hi, lo_inc, hi_inc)


@dataclass(frozen=True)
class QueryInfo:
    """Planner-facing summary of a SELECT statement.

    Predicates are normalized per column: a column has *either* one
    equality constant or one (merged) range, never both, and never two
    conflicting equalities — contradictory conjunctions set
    ``unsatisfiable`` instead (the query provably returns no rows).
    """

    table: str
    select_columns: Tuple[str, ...]       # expanded (no "*")
    referenced_columns: Tuple[str, ...]   # select + predicate columns
    eq_predicates: Dict[str, Value]
    range_predicates: Dict[str, RangeSpec]
    neq_predicates: Tuple[Comparison, ...]
    limit: Optional[int]
    unsatisfiable: bool = False
    aggregates: Tuple = ()                # Aggregate items, if any
    order_by: Optional[OrderBy] = None
    group_by: Optional[str] = None

    @property
    def predicate_columns(self) -> Tuple[str, ...]:
        cols = set(self.eq_predicates) | set(self.range_predicates)
        cols.update(p.column for p in self.neq_predicates)
        return tuple(sorted(cols))


def analyze_select(stmt: SelectStmt, schema: TableSchema) -> QueryInfo:
    """Validate and summarize a SELECT against a schema."""
    if stmt.table != schema.name:
        raise PlanningError(
            f"statement targets {stmt.table!r}, not {schema.name!r}")
    if stmt.aggregates:
        agg_columns = [a.column for a in stmt.aggregates
                       if a.column is not None]
        for column in agg_columns:
            if not schema.has_column(column):
                raise SchemaError(
                    f"unknown column {column!r} in aggregate")
        for aggregate in stmt.aggregates:
            if aggregate.func in ("SUM", "AVG") and \
                    not schema.column(aggregate.column).ctype.is_numeric:
                raise SchemaError(
                    f"{aggregate.func} needs a numeric column, got "
                    f"{aggregate.column!r}")
        if stmt.group_by is not None:
            if not schema.has_column(stmt.group_by):
                raise SchemaError(
                    f"unknown column {stmt.group_by!r} in GROUP BY")
            agg_columns = [stmt.group_by] + agg_columns
        select_columns = tuple(dict.fromkeys(agg_columns))
    elif stmt.group_by is not None:
        raise SqlUnsupportedError(
            "GROUP BY requires aggregate functions")
    elif stmt.columns == ("*",):
        select_columns = tuple(schema.column_names)
    else:
        for column in stmt.columns:
            if not schema.has_column(column):
                raise SchemaError(
                    f"unknown column {column!r} in SELECT list")
        select_columns = stmt.columns
    eq: Dict[str, Value] = {}
    ranges: Dict[str, RangeSpec] = {}
    neq: List[Comparison] = []
    unsatisfiable = False
    if stmt.where is not None:
        for predicate in stmt.where.predicates:
            if not schema.has_column(predicate.column):
                raise SchemaError(
                    f"unknown column {predicate.column!r} in WHERE")
            if isinstance(predicate, Between):
                spec = RangeSpec(lo=predicate.lo, hi=predicate.hi)
                _merge_range(ranges, predicate.column, spec)
            elif predicate.op == "=":
                if predicate.column in eq and \
                        eq[predicate.column] != predicate.value:
                    unsatisfiable = True
                eq[predicate.column] = predicate.value
            elif predicate.op == "!=":
                neq.append(predicate)
            else:
                spec = _range_from_comparison(predicate)
                _merge_range(ranges, predicate.column, spec)
    # Normalize per column: fold equalities into ranges/neqs so that a
    # column carries exactly one kind of constraint (or none).
    for column, value in list(eq.items()):
        if column in ranges:
            if _range_contains(ranges.pop(column), value):
                pass  # equality subsumes the range
            else:
                unsatisfiable = True
        for predicate in neq:
            if predicate.column == column and \
                    predicate.value == value:
                unsatisfiable = True
        neq = [p for p in neq if p.column != column]
    for column, spec in ranges.items():
        if _range_empty(spec):
            unsatisfiable = True
    order_columns: List[str] = []
    if stmt.order_by is not None:
        if stmt.aggregates and stmt.order_by.column != stmt.group_by:
            raise SqlUnsupportedError(
                "with aggregates, ORDER BY is only supported on the "
                "GROUP BY column")
        if not schema.has_column(stmt.order_by.column):
            raise SchemaError(
                f"unknown column {stmt.order_by.column!r} in ORDER BY")
        order_columns.append(stmt.order_by.column)
    referenced = tuple(dict.fromkeys(
        list(select_columns) + list(eq) + list(ranges) +
        [p.column for p in neq] + order_columns))
    return QueryInfo(table=stmt.table, select_columns=select_columns,
                     referenced_columns=referenced, eq_predicates=eq,
                     range_predicates=ranges, neq_predicates=tuple(neq),
                     limit=stmt.limit, unsatisfiable=unsatisfiable,
                     aggregates=stmt.aggregates,
                     order_by=stmt.order_by, group_by=stmt.group_by)


def _range_contains(spec: RangeSpec, value: Value) -> bool:
    if spec.lo is not None:
        if value < spec.lo or (value == spec.lo and
                               not spec.lo_inclusive):
            return False
    if spec.hi is not None:
        if value > spec.hi or (value == spec.hi and
                               not spec.hi_inclusive):
            return False
    return True


def _range_empty(spec: RangeSpec) -> bool:
    if spec.lo is None or spec.hi is None:
        return False
    if spec.lo > spec.hi:
        return True
    return spec.lo == spec.hi and not (spec.lo_inclusive and
                                       spec.hi_inclusive)


def _range_from_comparison(predicate: Comparison) -> RangeSpec:
    op, value = predicate.op, predicate.value
    if op == "<":
        return RangeSpec(hi=value, hi_inclusive=False)
    if op == "<=":
        return RangeSpec(hi=value, hi_inclusive=True)
    if op == ">":
        return RangeSpec(lo=value, lo_inclusive=False)
    return RangeSpec(lo=value, lo_inclusive=True)


def _merge_range(ranges: Dict[str, RangeSpec], column: str,
                 spec: RangeSpec) -> None:
    if column in ranges:
        ranges[column] = ranges[column].intersect(spec)
    else:
        ranges[column] = spec


# ----------------------------------------------------------------------
# selectivity estimation
# ----------------------------------------------------------------------

def predicate_selectivity(info: QueryInfo, stats: TableStats,
                          column: str) -> float:
    """Combined selectivity of all predicates on one column."""
    parts: List[float] = []
    if column in info.eq_predicates:
        parts.append(stats.column(column).selectivity_eq(
            info.eq_predicates[column]))
    if column in info.range_predicates:
        spec = info.range_predicates[column]
        parts.append(stats.column(column).selectivity_range(
            spec.lo, spec.hi, spec.lo_inclusive, spec.hi_inclusive))
    for predicate in info.neq_predicates:
        if predicate.column == column:
            parts.append(1.0 - stats.column(column).selectivity_eq(
                predicate.value))
    return combined_selectivity(parts) if parts else 1.0


def total_selectivity(info: QueryInfo, stats: TableStats) -> float:
    if info.unsatisfiable:
        return 0.0
    return combined_selectivity(
        [predicate_selectivity(info, stats, c)
         for c in info.predicate_columns])


# ----------------------------------------------------------------------
# access paths
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AccessPath:
    """One costed way of answering a query — a thin façade over the
    physical plan tree in ``plan``.

    The summary attributes exist for the advisor, reports, and tests
    that key on them; ``cost`` is exactly ``plan.estimate(...)`` and
    the executor runs exactly ``plan``.

    Attributes:
        kind: ``full_scan``, ``index_seek``, ``index_only_scan`` or
            ``view_scan``.
        index: the index used (None for scans of heap or view).
        cost: estimated cost breakdown.
        est_rows: estimated number of rows returned.
        eq_prefix_len: length of the equality prefix used by a seek.
        uses_range: whether the seek also applies a range on the key
            column right after the equality prefix.
        covering: whether the structure covers all referenced columns.
        view: the projection view scanned (``view_scan`` only).
        provides_order: the access method already emits rows in the
            ORDER BY order (no sort charged).
        plan: the physical-plan operator tree this path realizes.
    """

    kind: str
    index: Optional[IndexDef]
    cost: Cost
    est_rows: float
    eq_prefix_len: int = 0
    uses_range: bool = False
    covering: bool = False
    view: Optional[ViewDef] = None
    provides_order: bool = False
    plan: Optional[PlanNode] = None

    def describe(self, params: CostParams) -> str:
        if self.view is not None:
            target = self.view.label
        else:
            target = self.index.label if self.index else "heap"
        return (f"{self.kind}({target}) "
                f"cost={self.cost.total(params):.2f} "
                f"rows~{self.est_rows:.1f}")


def enumerate_access_paths(
        info: QueryInfo, stats: TableStats,
        indexes: Sequence[Tuple[IndexDef, IndexGeometry]],
        params: CostParams,
        views: Sequence[Tuple[ViewDef, ViewGeometry]] = ()
        ) -> List[AccessPath]:
    """All feasible access paths, sorted cheapest-first.

    Each path carries the realized plan tree; its cost is the tree's
    own estimate. ``views`` pairs
    :class:`~repro.sqlengine.views.ViewDef` with its
    :class:`~repro.sqlengine.views.ViewGeometry`; a view covering every
    referenced column offers a ``view_scan`` over its narrower pages.
    """
    out_rows = stats.nrows * total_selectivity(info, stats)
    paths: List[AccessPath] = [
        _realize(info, stats, params, out_rows, kind="full_scan")]
    for definition, geometry in indexes:
        if definition.table != info.table:
            continue
        paths.extend(_paths_for_index(info, stats, definition, geometry,
                                      out_rows, params))
    for view_def, view_geometry in views:
        if view_def.table != info.table:
            continue
        if view_def.covers(info.referenced_columns):
            paths.append(_realize(
                info, stats, params, out_rows, kind="view_scan",
                covering=True, view=view_def,
                view_geometry=view_geometry))
    paths.sort(key=lambda p: p.cost.total(params))
    return paths


def choose_access_path(
        info: QueryInfo, stats: TableStats,
        indexes: Sequence[Tuple[IndexDef, IndexGeometry]],
        params: CostParams,
        views: Sequence[Tuple[ViewDef, ViewGeometry]] = ()
        ) -> AccessPath:
    return enumerate_access_paths(info, stats, indexes, params,
                                  views)[0]


# ----------------------------------------------------------------------
# relevance extraction
# ----------------------------------------------------------------------

def structure_can_serve(info: QueryInfo, definition) -> bool:
    """Whether a design structure can contribute *any* access path to
    a query — the gate under which :func:`enumerate_access_paths`
    would realize a plan for it.

    This must stay the exact mirror of the enumeration rules above: an
    index serves when it offers a seek (an equality prefix, or a range
    on the column right after the prefix) or an index-only scan
    (covering); a view serves when it covers every referenced column;
    structures on other tables never serve. A structure that does not
    serve adds no path, so its presence or absence cannot change the
    chosen plan or its cost — that equivalence is what the what-if
    layer's relevance signatures are built on.

    Compression never changes *whether* a structure serves (coverage
    and seekability are column properties) — only the page/CPU
    trade-off of its realized paths. Variants at different levels are
    nevertheless distinct candidates end to end: the level is part of
    the definition's identity, so each variant enters the enumeration
    with its own geometry and lands in relevance signatures as its own
    member.
    """
    if definition.table != info.table:
        return False
    if isinstance(definition, ViewDef):
        return definition.covers(info.referenced_columns)
    covering = definition.covers(info.referenced_columns)
    prefix_len = 0
    for column in definition.columns:
        if column in info.eq_predicates:
            prefix_len += 1
        else:
            break
    uses_range = (prefix_len < len(definition.columns) and
                  definition.columns[prefix_len] in
                  info.range_predicates)
    return prefix_len > 0 or uses_range or covering


def relevant_structures(info: QueryInfo,
                        structures) -> Tuple:
    """The subset of ``structures`` that can affect ``info``'s plan,
    as a canonical (sorted) tuple.

    Two configurations with equal relevant subsets present the planner
    with identical ``(definition, geometry)`` path candidates in
    identical order, so they receive bit-identical plan estimates."""
    return tuple(d for d in sorted(structures, key=structure_sort_key)
                 if structure_can_serve(info, d))


def _paths_for_index(info: QueryInfo, stats: TableStats,
                     definition: IndexDef, geometry: IndexGeometry,
                     out_rows: float,
                     params: CostParams) -> List[AccessPath]:
    paths: List[AccessPath] = []
    covering = definition.covers(info.referenced_columns)
    # --- index seek: equality prefix (+ optional next-column range) ---
    prefix_len = 0
    for column in definition.columns:
        if column in info.eq_predicates:
            prefix_len += 1
        else:
            break
    uses_range = (prefix_len < len(definition.columns) and
                  definition.columns[prefix_len] in
                  info.range_predicates)
    if prefix_len > 0 or uses_range:
        paths.append(_realize(
            info, stats, params, out_rows, kind="index_seek",
            index=definition, geometry=geometry,
            eq_prefix_len=prefix_len, uses_range=uses_range,
            covering=covering))
    # --- index-only scan over a covering index ---
    if covering:
        paths.append(_realize(
            info, stats, params, out_rows, kind="index_only_scan",
            index=definition, geometry=geometry, covering=True))
    return paths


# ----------------------------------------------------------------------
# plan realization
# ----------------------------------------------------------------------

def _realize(info: QueryInfo, stats: TableStats, params: CostParams,
             out_rows: float, kind: str,
             index: Optional[IndexDef] = None,
             geometry: Optional[IndexGeometry] = None,
             eq_prefix_len: int = 0, uses_range: bool = False,
             covering: bool = False, view: Optional[ViewDef] = None,
             view_geometry: Optional[ViewGeometry] = None
             ) -> AccessPath:
    """Build the operator pipeline for one access method and wrap it
    in the :class:`AccessPath` façade, costed by its own estimate."""
    provides_order = (info.order_by is not None and
                      _order_provided(info, kind, index, eq_prefix_len))
    root = _build_pipeline(info, kind, index, geometry, eq_prefix_len,
                           uses_range, covering, view, view_geometry,
                           out_rows, provides_order)
    return AccessPath(kind=kind, index=index,
                      cost=root.estimate(stats, params),
                      est_rows=out_rows, eq_prefix_len=eq_prefix_len,
                      uses_range=uses_range, covering=covering,
                      view=view, provides_order=provides_order,
                      plan=root)


def _order_provided(info: QueryInfo, kind: str,
                    index: Optional[IndexDef],
                    eq_prefix_len: int) -> bool:
    """Does this access method already emit rows in ORDER BY order?"""
    column = info.order_by.column
    if column in info.eq_predicates:
        return True    # constant column: any order qualifies
    if index is not None and kind == "index_seek":
        key = index.columns
        return eq_prefix_len < len(key) and key[eq_prefix_len] == column
    if index is not None and kind == "index_only_scan":
        return index.columns[0] == column
    return False


def _build_pipeline(info: QueryInfo, kind: str,
                    index: Optional[IndexDef],
                    geometry: Optional[IndexGeometry],
                    eq_prefix_len: int, uses_range: bool,
                    covering: bool, view: Optional[ViewDef],
                    view_geometry: Optional[ViewGeometry],
                    out_rows: float, provides_order: bool) -> PlanNode:
    node: PlanNode
    if kind == "full_scan":
        node = ScanHeap(info)
    elif kind == "view_scan":
        node = ScanView(info, view, view_geometry.n_pages)
    elif kind == "index_seek":
        node = SeekIndex(info, index, geometry, eq_prefix_len,
                         uses_range)
        node = _filter_residual(node, info, index, eq_prefix_len,
                                uses_range)
        if not covering:
            node = FetchHeap(node, info, index, eq_prefix_len,
                             uses_range)
    elif kind == "index_only_scan":
        node = Filter(ScanIndexLeaf(index, geometry),
                      eq=tuple(info.eq_predicates.items()),
                      ranges=tuple(info.range_predicates.items()),
                      neq=tuple((p.column, p.value)
                                for p in info.neq_predicates))
        if not (node.eq or node.ranges or node.neq):
            node = node.child
    else:
        raise PlanningError(f"unknown access-path kind {kind!r}")
    if info.order_by is not None:
        node = Sort(node, info.order_by.column,
                    info.order_by.descending, provides_order, out_rows)
    node = Project(node, info)
    if info.aggregates:
        if info.group_by is not None:
            node = GroupAggregate(node, info)
        else:
            node = Aggregate(node, info)
    return node


def _filter_residual(node: PlanNode, info: QueryInfo, index: IndexDef,
                     eq_prefix_len: int, uses_range: bool) -> PlanNode:
    """Residual predicates a seek evaluates on the leaf entries before
    any heap fetch: predicates on *other key columns*, plus ``!=`` on
    any key column (the seek bounds cannot express them)."""
    seek_columns = set(index.columns[:eq_prefix_len])
    if uses_range:
        seek_columns.add(index.columns[eq_prefix_len])
    eq: List[Tuple[str, Value]] = []
    ranges: List[Tuple[str, RangeSpec]] = []
    neq: List[Tuple[str, Value]] = []
    for column in index.columns:
        for predicate in info.neq_predicates:
            if predicate.column == column:
                neq.append((column, predicate.value))
        if column in seek_columns:
            continue
        if column in info.eq_predicates:
            eq.append((column, info.eq_predicates[column]))
        if column in info.range_predicates:
            ranges.append((column, info.range_predicates[column]))
    if not (eq or ranges or neq):
        return node
    return Filter(node, eq=tuple(eq), ranges=tuple(ranges),
                  neq=tuple(neq))

"""Query analysis and access-path planning.

The planner analyzes a ``SELECT`` into a :class:`QueryInfo`, enumerates
the feasible access paths for a given set of (real or hypothetical)
indexes, costs each with :mod:`.costmodel`, and picks the cheapest.
Because the enumeration works purely on :class:`IndexDef` +
:class:`IndexGeometry`, the *same* code plans real executions and
what-if estimates — the two can never diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PlanningError, SchemaError, SqlUnsupportedError
from .costmodel import (Cost, CostParams, cost_full_scan, cost_index_only_scan,
                        cost_index_seek)
from .index import IndexDef, IndexGeometry
from .schema import TableSchema
from .sql.ast import Between, Comparison, OrderBy, SelectStmt
from .stats import TableStats, combined_selectivity
from .types import Value


@dataclass(frozen=True)
class RangeSpec:
    """A (possibly half-open) interval constraint on one column."""

    lo: Optional[Value] = None
    hi: Optional[Value] = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True

    def intersect(self, other: "RangeSpec") -> "RangeSpec":
        lo, lo_inc = self.lo, self.lo_inclusive
        if other.lo is not None and (lo is None or other.lo > lo or
                                     (other.lo == lo and
                                      not other.lo_inclusive)):
            lo, lo_inc = other.lo, other.lo_inclusive
        hi, hi_inc = self.hi, self.hi_inclusive
        if other.hi is not None and (hi is None or other.hi < hi or
                                     (other.hi == hi and
                                      not other.hi_inclusive)):
            hi, hi_inc = other.hi, other.hi_inclusive
        return RangeSpec(lo, hi, lo_inc, hi_inc)


@dataclass(frozen=True)
class QueryInfo:
    """Planner-facing summary of a SELECT statement.

    Predicates are normalized per column: a column has *either* one
    equality constant or one (merged) range, never both, and never two
    conflicting equalities — contradictory conjunctions set
    ``unsatisfiable`` instead (the query provably returns no rows).
    """

    table: str
    select_columns: Tuple[str, ...]       # expanded (no "*")
    referenced_columns: Tuple[str, ...]   # select + predicate columns
    eq_predicates: Dict[str, Value]
    range_predicates: Dict[str, RangeSpec]
    neq_predicates: Tuple[Comparison, ...]
    limit: Optional[int]
    unsatisfiable: bool = False
    aggregates: Tuple = ()                # Aggregate items, if any
    order_by: Optional[OrderBy] = None
    group_by: Optional[str] = None

    @property
    def predicate_columns(self) -> Tuple[str, ...]:
        cols = set(self.eq_predicates) | set(self.range_predicates)
        cols.update(p.column for p in self.neq_predicates)
        return tuple(sorted(cols))


def analyze_select(stmt: SelectStmt, schema: TableSchema) -> QueryInfo:
    """Validate and summarize a SELECT against a schema."""
    if stmt.table != schema.name:
        raise PlanningError(
            f"statement targets {stmt.table!r}, not {schema.name!r}")
    if stmt.aggregates:
        agg_columns = [a.column for a in stmt.aggregates
                       if a.column is not None]
        for column in agg_columns:
            if not schema.has_column(column):
                raise SchemaError(
                    f"unknown column {column!r} in aggregate")
        for aggregate in stmt.aggregates:
            if aggregate.func in ("SUM", "AVG") and \
                    not schema.column(aggregate.column).ctype.is_numeric:
                raise SchemaError(
                    f"{aggregate.func} needs a numeric column, got "
                    f"{aggregate.column!r}")
        if stmt.group_by is not None:
            if not schema.has_column(stmt.group_by):
                raise SchemaError(
                    f"unknown column {stmt.group_by!r} in GROUP BY")
            agg_columns = [stmt.group_by] + agg_columns
        select_columns = tuple(dict.fromkeys(agg_columns))
    elif stmt.group_by is not None:
        raise SqlUnsupportedError(
            "GROUP BY requires aggregate functions")
    elif stmt.columns == ("*",):
        select_columns = tuple(schema.column_names)
    else:
        for column in stmt.columns:
            if not schema.has_column(column):
                raise SchemaError(
                    f"unknown column {column!r} in SELECT list")
        select_columns = stmt.columns
    eq: Dict[str, Value] = {}
    ranges: Dict[str, RangeSpec] = {}
    neq: List[Comparison] = []
    unsatisfiable = False
    if stmt.where is not None:
        for predicate in stmt.where.predicates:
            if not schema.has_column(predicate.column):
                raise SchemaError(
                    f"unknown column {predicate.column!r} in WHERE")
            if isinstance(predicate, Between):
                spec = RangeSpec(lo=predicate.lo, hi=predicate.hi)
                _merge_range(ranges, predicate.column, spec)
            elif predicate.op == "=":
                if predicate.column in eq and \
                        eq[predicate.column] != predicate.value:
                    unsatisfiable = True
                eq[predicate.column] = predicate.value
            elif predicate.op == "!=":
                neq.append(predicate)
            else:
                spec = _range_from_comparison(predicate)
                _merge_range(ranges, predicate.column, spec)
    # Normalize per column: fold equalities into ranges/neqs so that a
    # column carries exactly one kind of constraint (or none).
    for column, value in list(eq.items()):
        if column in ranges:
            if _range_contains(ranges.pop(column), value):
                pass  # equality subsumes the range
            else:
                unsatisfiable = True
        for predicate in neq:
            if predicate.column == column and \
                    predicate.value == value:
                unsatisfiable = True
        neq = [p for p in neq if p.column != column]
    for column, spec in ranges.items():
        if _range_empty(spec):
            unsatisfiable = True
    order_columns: List[str] = []
    if stmt.order_by is not None:
        if stmt.aggregates and stmt.order_by.column != stmt.group_by:
            raise SqlUnsupportedError(
                "with aggregates, ORDER BY is only supported on the "
                "GROUP BY column")
        if not schema.has_column(stmt.order_by.column):
            raise SchemaError(
                f"unknown column {stmt.order_by.column!r} in ORDER BY")
        order_columns.append(stmt.order_by.column)
    referenced = tuple(dict.fromkeys(
        list(select_columns) + list(eq) + list(ranges) +
        [p.column for p in neq] + order_columns))
    return QueryInfo(table=stmt.table, select_columns=select_columns,
                     referenced_columns=referenced, eq_predicates=eq,
                     range_predicates=ranges, neq_predicates=tuple(neq),
                     limit=stmt.limit, unsatisfiable=unsatisfiable,
                     aggregates=stmt.aggregates,
                     order_by=stmt.order_by, group_by=stmt.group_by)


def _range_contains(spec: RangeSpec, value: Value) -> bool:
    if spec.lo is not None:
        if value < spec.lo or (value == spec.lo and
                               not spec.lo_inclusive):
            return False
    if spec.hi is not None:
        if value > spec.hi or (value == spec.hi and
                               not spec.hi_inclusive):
            return False
    return True


def _range_empty(spec: RangeSpec) -> bool:
    if spec.lo is None or spec.hi is None:
        return False
    if spec.lo > spec.hi:
        return True
    return spec.lo == spec.hi and not (spec.lo_inclusive and
                                       spec.hi_inclusive)


def _range_from_comparison(predicate: Comparison) -> RangeSpec:
    op, value = predicate.op, predicate.value
    if op == "<":
        return RangeSpec(hi=value, hi_inclusive=False)
    if op == "<=":
        return RangeSpec(hi=value, hi_inclusive=True)
    if op == ">":
        return RangeSpec(lo=value, lo_inclusive=False)
    return RangeSpec(lo=value, lo_inclusive=True)


def _merge_range(ranges: Dict[str, RangeSpec], column: str,
                 spec: RangeSpec) -> None:
    if column in ranges:
        ranges[column] = ranges[column].intersect(spec)
    else:
        ranges[column] = spec


# ----------------------------------------------------------------------
# selectivity estimation
# ----------------------------------------------------------------------

def predicate_selectivity(info: QueryInfo, stats: TableStats,
                          column: str) -> float:
    """Combined selectivity of all predicates on one column."""
    parts: List[float] = []
    if column in info.eq_predicates:
        parts.append(stats.column(column).selectivity_eq(
            info.eq_predicates[column]))
    if column in info.range_predicates:
        spec = info.range_predicates[column]
        parts.append(stats.column(column).selectivity_range(
            spec.lo, spec.hi, spec.lo_inclusive, spec.hi_inclusive))
    for predicate in info.neq_predicates:
        if predicate.column == column:
            parts.append(1.0 - stats.column(column).selectivity_eq(
                predicate.value))
    return combined_selectivity(parts) if parts else 1.0


def total_selectivity(info: QueryInfo, stats: TableStats) -> float:
    if info.unsatisfiable:
        return 0.0
    return combined_selectivity(
        [predicate_selectivity(info, stats, c)
         for c in info.predicate_columns])


# ----------------------------------------------------------------------
# access paths
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AccessPath:
    """One costed way of answering a query.

    Attributes:
        kind: ``full_scan``, ``index_seek``, ``index_only_scan`` or
            ``view_scan``.
        index: the index used (None for scans of heap or view).
        cost: estimated cost breakdown.
        est_rows: estimated number of rows returned.
        eq_prefix_len: length of the equality prefix used by a seek.
        uses_range: whether the seek also applies a range on the key
            column right after the equality prefix.
        covering: whether the structure covers all referenced columns.
        view: the projection view scanned (``view_scan`` only).
    """

    kind: str
    index: Optional[IndexDef]
    cost: Cost
    est_rows: float
    eq_prefix_len: int = 0
    uses_range: bool = False
    covering: bool = False
    view: Optional[object] = None
    provides_order: bool = False

    def describe(self, params: CostParams) -> str:
        if self.view is not None:
            target = self.view.label
        else:
            target = self.index.label if self.index else "heap"
        return (f"{self.kind}({target}) "
                f"cost={self.cost.total(params):.2f} "
                f"rows~{self.est_rows:.1f}")


def enumerate_access_paths(
        info: QueryInfo, stats: TableStats,
        indexes: Sequence[Tuple[IndexDef, IndexGeometry]],
        params: CostParams,
        views: Sequence[Tuple[object, object]] = ()
        ) -> List[AccessPath]:
    """All feasible access paths, sorted cheapest-first.

    ``views`` pairs :class:`~repro.sqlengine.views.ViewDef` with its
    :class:`~repro.sqlengine.views.ViewGeometry`; a view covering every
    referenced column offers a ``view_scan`` over its narrower pages.
    """
    from .costmodel import cost_sort, cost_view_scan
    out_rows = stats.nrows * total_selectivity(info, stats)
    paths: List[AccessPath] = [AccessPath(
        kind="full_scan", index=None,
        cost=cost_full_scan(stats, params), est_rows=out_rows)]
    for definition, geometry in indexes:
        if definition.table != info.table:
            continue
        paths.extend(_paths_for_index(info, stats, definition, geometry,
                                      out_rows, params))
    for view_def, view_geometry in views:
        if view_def.table != info.table:
            continue
        if view_def.covers(info.referenced_columns):
            paths.append(AccessPath(
                kind="view_scan", index=None,
                cost=cost_view_scan(stats, view_geometry.n_pages,
                                    params),
                est_rows=out_rows, covering=True, view=view_def))
    if info.order_by is not None:
        # Mark order-providing paths; charge a result sort to the rest.
        paths = [_with_order(info, path, params) for path in paths]
    paths.sort(key=lambda p: p.cost.total(params))
    return paths


def _with_order(info: QueryInfo, path: AccessPath,
                params: CostParams) -> AccessPath:
    from dataclasses import replace
    from .costmodel import cost_sort
    column = info.order_by.column
    provided = False
    if column in info.eq_predicates:
        provided = True    # constant column: any order qualifies
    elif path.index is not None and path.kind == "index_seek":
        key = path.index.columns
        if path.eq_prefix_len < len(key) and \
                key[path.eq_prefix_len] == column:
            provided = True
    elif path.index is not None and path.kind == "index_only_scan":
        provided = path.index.columns[0] == column
    if provided:
        return replace(path, provides_order=True)
    return replace(path, cost=path.cost + cost_sort(path.est_rows,
                                                    params))


def choose_access_path(
        info: QueryInfo, stats: TableStats,
        indexes: Sequence[Tuple[IndexDef, IndexGeometry]],
        params: CostParams,
        views: Sequence[Tuple[object, object]] = ()) -> AccessPath:
    return enumerate_access_paths(info, stats, indexes, params,
                                  views)[0]


def _paths_for_index(info: QueryInfo, stats: TableStats,
                     definition: IndexDef, geometry: IndexGeometry,
                     out_rows: float,
                     params: CostParams) -> List[AccessPath]:
    paths: List[AccessPath] = []
    covering = definition.covers(info.referenced_columns)
    # --- index seek: equality prefix (+ optional next-column range) ---
    prefix_len = 0
    key_selectivities: List[float] = []
    for column in definition.columns:
        if column in info.eq_predicates:
            key_selectivities.append(
                stats.column(column).selectivity_eq(
                    info.eq_predicates[column]))
            prefix_len += 1
        else:
            break
    uses_range = False
    if prefix_len < len(definition.columns):
        next_column = definition.columns[prefix_len]
        if next_column in info.range_predicates:
            spec = info.range_predicates[next_column]
            key_selectivities.append(
                stats.column(next_column).selectivity_range(
                    spec.lo, spec.hi, spec.lo_inclusive,
                    spec.hi_inclusive))
            uses_range = True
    if prefix_len > 0 or uses_range:
        key_sel = combined_selectivity(key_selectivities)
        seek_columns = set(definition.columns[:prefix_len])
        if uses_range:
            seek_columns.add(definition.columns[prefix_len])
        # Predicates on *other key columns* filter entries before any
        # heap fetch; predicates on non-key columns filter after.
        in_key_residual = combined_selectivity([
            predicate_selectivity(info, stats, c)
            for c in info.predicate_columns
            if c in definition.columns and c not in seek_columns])
        paths.append(AccessPath(
            kind="index_seek", index=definition,
            cost=cost_index_seek(stats, geometry, key_sel, covering,
                                 in_key_residual, params),
            est_rows=out_rows, eq_prefix_len=prefix_len,
            uses_range=uses_range, covering=covering))
    # --- index-only scan over a covering index ---
    if covering:
        paths.append(AccessPath(
            kind="index_only_scan", index=definition,
            cost=cost_index_only_scan(stats, geometry, params),
            est_rows=out_rows, covering=True))
    return paths

"""A B+-tree supporting composite keys, duplicates, and bulk loading.

This is the engine's physical index structure. Keys are tuples (one
element per indexed column); values are row ids. Duplicate keys are
allowed — point lookups return every matching rid.

The tree implements the full textbook algorithm set:

* top-down search with binary search within nodes,
* leaf inserts with node splits propagating upward,
* deletes with redistribution (borrowing) and merging, shrinking the
  root when it empties,
* bottom-up bulk loading from sorted input (used for index builds),
* ordered iteration via the leaf chain, and prefix/range scans.

``check_invariants`` verifies structural invariants and is exercised by
the property-based test suite after random operation sequences.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

from ..errors import StorageError

Key = Tuple
KeyValue = Tuple[Key, int]

#: Default maximum number of entries per node. Chosen so that node sizes
#: resemble real index pages for small tuples while keeping Python-level
#: overhead reasonable.
DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: List[Key] = []

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__()
        self.values: List[int] = []
        self.next: Optional["_Leaf"] = None

    @property
    def is_leaf(self) -> bool:
        return True


class _Internal(_Node):
    """Internal node: ``children[i]`` holds keys < ``keys[i]``; the last
    child holds keys >= ``keys[-1]`` (right-biased separators)."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: List[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return False


def normalize_key(key) -> Key:
    """Accept scalars or sequences; store keys as tuples."""
    if isinstance(key, tuple):
        return key
    if isinstance(key, list):
        return tuple(key)
    return (key,)


class BPlusTree:
    """A B+-tree mapping composite keys to row ids.

    Args:
        order: maximum entries per node (>= 4).
    """

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise StorageError("B+-tree order must be >= 4")
        self.order = order
        self._min_fill = order // 2
        self._root: _Node = _Leaf()
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels, counting the leaf level."""
        return self._height

    def search(self, key) -> List[int]:
        """Return all row ids stored under ``key`` (exact match)."""
        key = normalize_key(key)
        leaf = self._find_leaf_first(key)
        out: List[int] = []
        idx = bisect.bisect_left(leaf.keys, key)
        while True:
            while idx < len(leaf.keys) and leaf.keys[idx] == key:
                out.append(leaf.values[idx])
                idx += 1
            if idx < len(leaf.keys) or leaf.next is None:
                break
            leaf = leaf.next
            idx = 0
            if leaf.keys and leaf.keys[0] != key:
                break
        return out

    def search_prefix(self, prefix) -> List[Tuple[Key, int]]:
        """All ``(key, rid)`` pairs whose key starts with ``prefix``."""
        prefix = normalize_key(prefix)
        plen = len(prefix)
        out: List[Tuple[Key, int]] = []
        for key, rid in self.iter_from(prefix):
            if key[:plen] != prefix:
                break
            out.append((key, rid))
        return out

    def range_scan(self, lo=None, hi=None, lo_inclusive: bool = True,
                   hi_inclusive: bool = True) -> List[Tuple[Key, int]]:
        """All pairs with ``lo (<|<=) key (<|<=) hi``.

        ``None`` bounds are open-ended. Bounds may be shorter tuples
        than the stored keys; tuple prefix ordering applies (a bound
        ``(5,)`` sorts before ``(5, anything)``).
        """
        out: List[Tuple[Key, int]] = []
        start = normalize_key(lo) if lo is not None else None
        stop = normalize_key(hi) if hi is not None else None
        iterator = self.iter_from(start) if start is not None \
            else self.items()
        for key, rid in iterator:
            if start is not None and not lo_inclusive and \
                    key[:len(start)] == start:
                continue
            if stop is not None:
                trimmed = key[:len(stop)]
                if trimmed > stop:
                    break
                if trimmed == stop and not hi_inclusive:
                    break
            out.append((key, rid))
        return out

    def items(self) -> Iterator[Tuple[Key, int]]:
        """Iterate all pairs in key order via the leaf chain."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for key, rid in zip(leaf.keys, leaf.values):
                yield key, rid
            leaf = leaf.next

    def iter_from(self, key) -> Iterator[Tuple[Key, int]]:
        """Iterate pairs with keys >= ``key`` in order."""
        key = normalize_key(key)
        leaf = self._find_leaf_first(key)
        idx = bisect.bisect_left(leaf.keys, key)
        while leaf is not None:
            while idx < len(leaf.keys):
                yield leaf.keys[idx], leaf.values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0

    # ------------------------------------------------------------------
    # geometry (for page accounting)
    # ------------------------------------------------------------------

    def node_counts(self) -> Tuple[int, int]:
        """Return ``(n_leaf_nodes, n_internal_nodes)``."""
        leaves = 0
        internals = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves += 1
            else:
                internals += 1
                stack.extend(node.children)  # type: ignore[attr-defined]
        return leaves, internals

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def insert(self, key, rid: int) -> None:
        """Insert ``(key, rid)``; duplicates are kept."""
        key = normalize_key(key)
        split = self._insert(self._root, key, rid)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1

    def delete(self, key, rid: Optional[int] = None) -> bool:
        """Delete one entry matching ``key`` (and ``rid`` if given).

        Returns True if an entry was removed.
        """
        key = normalize_key(key)
        removed = self._delete(self._root, key, rid)
        if removed:
            self._size -= 1
            root = self._root
            if not root.is_leaf and len(root.children) == 1:  # type: ignore[attr-defined]
                self._root = root.children[0]  # type: ignore[attr-defined]
                self._height -= 1
        return removed

    def bulk_load(self, pairs: Iterable[KeyValue],
                  fault_hook=None) -> None:
        """Replace the tree's contents by bottom-up loading sorted pairs.

        ``pairs`` must be sorted by key (duplicates allowed). This is
        how index builds work: sort once, then write full pages.

        ``fault_hook`` (when given) is called once per leaf chunk; it
        may raise to abort the load mid-way. The load is atomic either
        way: the new tree is assembled off to the side and only
        assigned at the end, so an aborted load leaves the existing
        tree untouched.
        """
        pairs = [(normalize_key(k), v) for k, v in pairs]
        for (prev, _), (cur, _) in zip(pairs, pairs[1:]):
            if cur < prev:
                raise StorageError("bulk_load input must be sorted")
        fill = max(2, int(self.order * 0.85))
        leaves: List[_Leaf] = []
        for start in range(0, len(pairs), fill):
            if fault_hook is not None:
                fault_hook()
            leaf = _Leaf()
            chunk = pairs[start:start + fill]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        if not leaves:
            self._root = _Leaf()
            self._size = 0
            self._height = 1
            return
        # Avoid an underfull rightmost leaf by rebalancing with its left
        # sibling (classic bulk-load fix-up).
        if len(leaves) > 1 and len(leaves[-1].keys) < self._min_fill:
            left, right = leaves[-2], leaves[-1]
            total = len(left.keys) + len(right.keys)
            keep = total // 2
            right.keys = left.keys[keep:] + right.keys
            right.values = left.values[keep:] + right.values
            del left.keys[keep:], left.values[keep:]
        level: List[_Node] = list(leaves)
        height = 1
        while len(level) > 1:
            parents: List[_Node] = []
            for start in range(0, len(level), fill):
                chunk = level[start:start + fill]
                parent = _Internal()
                parent.children = list(chunk)
                parent.keys = [self._smallest_key(c) for c in chunk[1:]]
                parents.append(parent)
            if len(parents) > 1 and \
                    len(parents[-1].children) < 2:  # type: ignore[attr-defined]
                # Merge a singleton rightmost parent into its sibling.
                lone = parents.pop()
                prev = parents[-1]
                prev.keys.append(  # type: ignore[attr-defined]
                    self._smallest_key(lone.children[0]))  # type: ignore[attr-defined]
                prev.children.extend(  # type: ignore[attr-defined]
                    lone.children)  # type: ignore[attr-defined]
            level = parents
            height += 1
        self._root = level[0]
        self._size = len(pairs)
        self._height = height

    # ------------------------------------------------------------------
    # invariants (testing aid)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`StorageError` if any structural invariant fails."""
        count = self._check_node(self._root, None, None, is_root=True,
                                 depth=0, leaf_depths=set())
        if count != self._size:
            raise StorageError(
                f"size mismatch: counted {count}, recorded {self._size}")
        # Leaf chain covers all entries in sorted order.
        chained = list(self.items())
        if len(chained) != self._size:
            raise StorageError("leaf chain does not cover all entries")
        for (a, _), (b, _) in zip(chained, chained[1:]):
            if b < a:
                raise StorageError("leaf chain out of order")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _find_leaf(self, key: Key) -> _Leaf:
        """Leaf for *inserting* ``key`` (duplicates placed rightmost)."""
        node = self._root
        while not node.is_leaf:
            internal = node  # type: _Internal  # type: ignore[assignment]
            idx = bisect.bisect_right(internal.keys, key)
            node = internal.children[idx]
        return node  # type: ignore[return-value]

    def _find_leaf_first(self, key: Key) -> _Leaf:
        """Leaf holding the *first* occurrence of ``key`` (or its
        insertion point). Descends with bisect_left so duplicates that
        ended up left of an equal separator are not skipped."""
        node = self._root
        while not node.is_leaf:
            internal = node  # type: _Internal  # type: ignore[assignment]
            idx = bisect.bisect_left(internal.keys, key)
            node = internal.children[idx]
        return node  # type: ignore[return-value]

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        return node  # type: ignore[return-value]

    def _smallest_key(self, node: _Node) -> Key:
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[attr-defined]
        return node.keys[0]

    def _insert(self, node: _Node, key: Key,
                rid: int) -> Optional[Tuple[Key, _Node]]:
        if node.is_leaf:
            leaf = node  # type: _Leaf  # type: ignore[assignment]
            idx = bisect.bisect_right(leaf.keys, key)
            leaf.keys.insert(idx, key)
            leaf.values.insert(idx, rid)
            if len(leaf.keys) > self.order:
                return self._split_leaf(leaf)
            return None
        internal = node  # type: _Internal  # type: ignore[assignment]
        idx = bisect.bisect_right(internal.keys, key)
        split = self._insert(internal.children[idx], key, rid)
        if split is None:
            return None
        sep, right = split
        internal.keys.insert(idx, sep)
        internal.children.insert(idx + 1, right)
        if len(internal.children) > self.order:
            return self._split_internal(internal)
        return None

    def _split_leaf(self, leaf: _Leaf) -> Tuple[Key, _Node]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        del leaf.keys[mid:], leaf.values[mid:]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[Key, _Node]:
        mid = len(node.children) // 2
        right = _Internal()
        right.children = node.children[mid:]
        right.keys = node.keys[mid:]
        sep = node.keys[mid - 1]
        del node.children[mid:]
        del node.keys[mid - 1:]
        return sep, right

    def _delete(self, node: _Node, key: Key, rid: Optional[int]) -> bool:
        if node.is_leaf:
            leaf = node  # type: _Leaf  # type: ignore[assignment]
            idx = bisect.bisect_left(leaf.keys, key)
            while idx < len(leaf.keys) and leaf.keys[idx] == key:
                if rid is None or leaf.values[idx] == rid:
                    del leaf.keys[idx], leaf.values[idx]
                    return True
                idx += 1
            return False
        internal = node  # type: _Internal  # type: ignore[assignment]
        idx = bisect.bisect_right(internal.keys, key)
        # Duplicates equal to a separator may sit in the child to its
        # left as well; retry there if the right child missed.
        removed = self._delete(internal.children[idx], key, rid)
        if removed:
            self._rebalance_child(internal, idx)
            return True
        while idx > 0 and internal.keys[idx - 1] == key:
            idx -= 1
            if self._delete(internal.children[idx], key, rid):
                self._rebalance_child(internal, idx)
                return True
        return False

    def _fill_of(self, node: _Node) -> int:
        if node.is_leaf:
            return len(node.keys)
        return len(node.children)  # type: ignore[attr-defined]

    def _rebalance_child(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        if self._fill_of(child) >= self._min_fill:
            return
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] \
            if idx + 1 < len(parent.children) else None
        if left is not None and self._fill_of(left) > self._min_fill:
            self._borrow_from_left(parent, idx)
        elif right is not None and self._fill_of(right) > self._min_fill:
            self._borrow_from_right(parent, idx)
        elif left is not None:
            self._merge_children(parent, idx - 1)
        elif right is not None:
            self._merge_children(parent, idx)

    def _borrow_from_left(self, parent: _Internal, idx: int) -> None:
        left, child = parent.children[idx - 1], parent.children[idx]
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())  # type: ignore[attr-defined]
            parent.keys[idx - 1] = child.keys[0]
        else:
            child.children.insert(0, left.children.pop())  # type: ignore[attr-defined]
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()

    def _borrow_from_right(self, parent: _Internal, idx: int) -> None:
        child, right = parent.children[idx], parent.children[idx + 1]
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))  # type: ignore[attr-defined]
            parent.keys[idx] = right.keys[0]
        else:
            child.children.append(right.children.pop(0))  # type: ignore[attr-defined]
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)

    def _merge_children(self, parent: _Internal, idx: int) -> None:
        """Merge child ``idx+1`` into child ``idx``."""
        left, right = parent.children[idx], parent.children[idx + 1]
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)  # type: ignore[attr-defined]
            left.next = right.next  # type: ignore[attr-defined]
        else:
            left.keys.append(parent.keys[idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)  # type: ignore[attr-defined]
        del parent.keys[idx]
        del parent.children[idx + 1]

    def _check_node(self, node: _Node, lo: Optional[Key], hi: Optional[Key],
                    is_root: bool, depth: int, leaf_depths: set) -> int:
        keys = node.keys
        for a, b in zip(keys, keys[1:]):
            if b < a:
                raise StorageError("node keys out of order")
        for k in keys:
            if lo is not None and k < lo:
                raise StorageError("key below subtree lower bound")
            # Duplicate runs may legally leave keys equal to the parent
            # separator in the left subtree, so only strictly-greater
            # keys violate the bound.
            if hi is not None and k > hi and node.is_leaf:
                raise StorageError("leaf key above subtree upper bound")
        if node.is_leaf:
            leaf_depths.add(depth)
            if len(leaf_depths) > 1:
                raise StorageError("leaves at different depths")
            if not is_root and len(keys) < self._min_fill \
                    and self._size >= self.order:
                # Bulk-loaded trees with very few entries may legally
                # have a sparse root-adjacent leaf; enforce only when
                # the tree is big enough for fills to matter.
                raise StorageError("underfull leaf")
            return len(keys)
        internal = node  # type: _Internal  # type: ignore[assignment]
        if len(internal.children) != len(keys) + 1:
            raise StorageError("internal fanout/key mismatch")
        if not is_root and len(internal.children) < self._min_fill \
                and self._size >= self.order ** 2:
            raise StorageError("underfull internal node")
        total = 0
        bounds = [lo] + list(keys) + [hi]
        for i, child in enumerate(internal.children):
            total += self._check_node(child, bounds[i], bounds[i + 1],
                                      is_root=False, depth=depth + 1,
                                      leaf_depths=leaf_depths)
        return total

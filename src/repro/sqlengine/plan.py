"""The physical-plan IR shared by planner, executor, and what-if
optimizer.

One statement, one plan tree. The planner
(:func:`~repro.sqlengine.planner.enumerate_access_paths`) emits trees
of the operators defined here; the executor is a thin interpreter that
calls :meth:`PlanNode.run`; the what-if optimizer costs the *same*
objects through :meth:`PlanNode.estimate`. Because there is exactly one
costing path and one execution path per operator, estimate-vs-metered
agreement is structural, not coincidental — a hypothetical index is
nothing more than a catalog substitution at plan-build time (the
:class:`~repro.sqlengine.index.IndexGeometry` embedded in the node is
computed from statistics, identically for materialized and
hypothetical structures).

Operators
---------

* :class:`ScanHeap` — sequential heap scan with vectorized predicate
  evaluation.
* :class:`ScanView` — the same scan over a projection view's narrower
  pages.
* :class:`SeekIndex` — B+-tree descent on an equality prefix
  (optionally a range on the next key column); yields leaf entries.
* :class:`ScanIndexLeaf` — full leaf-level scan of a covering index.
* :class:`Filter` — residual predicate evaluation on a row stream.
* :class:`FetchHeap` — random heap fetches behind a non-covering seek.
* :class:`Sort` — ORDER BY (a no-op reversal when the child already
  provides the order).
* :class:`Project` — output-column projection (re-checks non-key
  predicates on heap-backed streams, exactly as a real engine's
  recheck node would).
* :class:`Aggregate` / :class:`GroupAggregate` — aggregate folds.

Every operator is a frozen dataclass, so plan trees compare by
structure: the verification harness asserts the what-if optimizer and
the executor pick *bit-identical* trees for every statement ×
configuration.

Runtime row carriers
--------------------

Operators exchange :class:`HeapStream` (heap row ids) or
:class:`LeafStream` (positions in an index's sorted leaf level); the
root operators (:class:`Project` and the aggregates) turn streams into
plain row tuples. :meth:`PlanNode.locate` is the DML entry point: it
runs the pipeline just far enough to produce the matching heap row
ids, without charging output-side work (heap fetch, sort) that
UPDATE/DELETE row targeting does not perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, List, Sequence, Tuple, Union)

import numpy as np

from .costmodel import (Cost, CostParams, MeteredCost, cost_full_scan,
                        cost_heap_fetch, cost_index_only_scan,
                        cost_seek_entries, cost_sort, cost_view_scan)
from .index import Index, IndexDef, IndexGeometry
from .stats import TableStats, combined_selectivity
from .storage import HeapTable
from .types import Value
from .views import MaterializedView, ViewDef

if TYPE_CHECKING:  # planner imports plan; annotations only, no cycle
    from .buffer import BufferManager
    from .planner import QueryInfo, RangeSpec


# ----------------------------------------------------------------------
# runtime context and row streams
# ----------------------------------------------------------------------

@dataclass
class PlanRuntime:
    """Everything an operator needs to execute and meter itself."""

    table: HeapTable
    indexes: Dict[IndexDef, Index]
    views: Dict[ViewDef, MaterializedView]
    buffer_manager: "BufferManager"
    params: CostParams
    metered: MeteredCost


@dataclass
class HeapStream:
    """Row ids into the heap (full scans, view scans, fetched seeks)."""

    table: HeapTable
    rids: np.ndarray

    def __len__(self) -> int:
        return len(self.rids)

    def column(self, name: str) -> np.ndarray:
        return self.table.column_array(name)[self.rids]

    def select(self, mask: np.ndarray) -> "HeapStream":
        return HeapStream(self.table, self.rids[mask])

    def take(self, order: np.ndarray) -> "HeapStream":
        return HeapStream(self.table, self.rids[order])

    def reverse(self) -> "HeapStream":
        return HeapStream(self.table, self.rids[::-1])


@dataclass
class LeafStream:
    """Positions into an index's sorted leaf mirror (seeks, covering
    scans); carries the key columns, so covering plans never touch the
    heap."""

    cols: Dict[str, np.ndarray]
    leaf_rids: np.ndarray
    positions: np.ndarray

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def rids(self) -> np.ndarray:
        return self.leaf_rids[self.positions]

    def column(self, name: str) -> np.ndarray:
        return self.cols[name][self.positions]

    def select(self, mask: np.ndarray) -> "LeafStream":
        return LeafStream(self.cols, self.leaf_rids,
                          self.positions[mask])

    def take(self, order: np.ndarray) -> "LeafStream":
        return LeafStream(self.cols, self.leaf_rids,
                          self.positions[order])

    def reverse(self) -> "LeafStream":
        return LeafStream(self.cols, self.leaf_rids,
                          self.positions[::-1])


Stream = Union[HeapStream, LeafStream]
Rows = List[Tuple[Value, ...]]


# ----------------------------------------------------------------------
# operator base
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PlanNode:
    """One physical operator; knows how to cost and execute itself."""

    def estimate(self, stats: TableStats, params: CostParams) -> Cost:
        """Cumulative estimated cost of this subtree."""
        raise NotImplementedError

    def run(self, runtime: PlanRuntime):
        """Execute the subtree, metering through ``runtime.metered``."""
        raise NotImplementedError

    def locate(self, runtime: PlanRuntime):
        """Run just far enough to yield matching heap rids (DML row
        targeting: no heap-fetch or sort charges)."""
        raise NotImplementedError

    def children(self) -> Tuple["PlanNode", ...]:
        child = getattr(self, "child", None)
        return (child,) if child is not None else ()

    def label(self) -> str:
        raise NotImplementedError

    def explain(self, stats: TableStats = None,
                params: CostParams = None) -> str:
        """Render the subtree, one operator per line; with ``stats``
        and ``params``, each line carries the subtree's estimated cost
        units."""
        lines: List[str] = []
        self._render(lines, "", True, True, stats, params)
        return "\n".join(lines)

    def _render(self, lines: List[str], prefix: str, last: bool,
                root: bool, stats, params) -> None:
        text = self.label()
        if stats is not None and params is not None:
            total = self.estimate(stats, params).total(params)
            text += f"  cost={total:.2f}"
        if root:
            lines.append(text)
            child_prefix = ""
        else:
            connector = "└─ " if last else "├─ "
            lines.append(prefix + connector + text)
            child_prefix = prefix + ("   " if last else "│  ")
        kids = self.children()
        for i, kid in enumerate(kids):
            kid._render(lines, child_prefix, i == len(kids) - 1,
                        False, stats, params)


# ----------------------------------------------------------------------
# leaf operators (access methods)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScanHeap(PlanNode):
    """Sequential heap scan evaluating every predicate vectorized."""

    info: "QueryInfo"

    def estimate(self, stats, params) -> Cost:
        return cost_full_scan(stats, params)

    def run(self, runtime: PlanRuntime) -> HeapStream:
        table = runtime.table
        pages = table.scan_pages()
        runtime.metered.add_reads(pages)
        runtime.metered.add_cpu(table.nslots *
                                runtime.params.cpu_tuple_cost)
        runtime.metered.rows_examined += table.nslots
        mask = table.valid_mask().copy()
        for column, value in self.info.eq_predicates.items():
            mask &= table.column_array(column) == value
        for column, spec in self.info.range_predicates.items():
            mask &= range_mask(table.column_array(column), spec)
        for predicate in self.info.neq_predicates:
            mask &= (table.column_array(predicate.column)
                     != predicate.value)
        return HeapStream(table, np.nonzero(mask)[0])

    def locate(self, runtime: PlanRuntime) -> HeapStream:
        return self.run(runtime)

    def label(self) -> str:
        return f"ScanHeap({self.info.table})"


@dataclass(frozen=True)
class ScanView(PlanNode):
    """Scan a projection view: identical predicate evaluation to a
    heap scan (views share the base table's row ids), charged at the
    view's narrower page geometry."""

    info: "QueryInfo"
    view: ViewDef
    n_pages: int

    def estimate(self, stats, params) -> Cost:
        return cost_view_scan(stats, self.n_pages, params,
                              self.view.compression.cpu_factor)

    def run(self, runtime: PlanRuntime) -> HeapStream:
        view = runtime.views[self.view]
        pages = view.charge_scan()
        runtime.metered.add_reads(pages)
        runtime.metered.add_cpu(runtime.table.nslots *
                                runtime.params.cpu_tuple_cost *
                                self.view.compression.cpu_factor)
        runtime.metered.rows_examined += runtime.table.nslots
        mask = runtime.table.valid_mask().copy()
        for column, value in self.info.eq_predicates.items():
            mask &= view.column_array(column) == value
        for column, spec in self.info.range_predicates.items():
            mask &= range_mask(view.column_array(column), spec)
        for predicate in self.info.neq_predicates:
            mask &= (view.column_array(predicate.column)
                     != predicate.value)
        return HeapStream(runtime.table, np.nonzero(mask)[0])

    def locate(self, runtime: PlanRuntime) -> HeapStream:
        return self.run(runtime)

    def label(self) -> str:
        return f"ScanView({self.view.label})"


@dataclass(frozen=True)
class SeekIndex(PlanNode):
    """B+-tree descent narrowing by an equality prefix, then an
    optional range on the next key column; yields the leaf entries in
    the seek interval (residual key filtering is a separate
    :class:`Filter`)."""

    info: "QueryInfo"
    index: IndexDef
    geometry: IndexGeometry
    eq_prefix_len: int
    uses_range: bool

    def estimate(self, stats, params) -> Cost:
        key_sel = seek_key_selectivity(self.info, stats,
                                       self.index.columns,
                                       self.eq_prefix_len,
                                       self.uses_range)
        return cost_seek_entries(stats, self.geometry, key_sel, params)

    def run(self, runtime: PlanRuntime) -> LeafStream:
        index = runtime.indexes[self.index]
        cols, rids = index.leaf_arrays()
        lo, hi = 0, len(rids)
        # Narrow by the equality prefix, column by column; within an
        # equal prefix the next key column is sorted, so searchsorted
        # stays valid at each step.
        for column in self.index.columns[:self.eq_prefix_len]:
            data = cols[column][lo:hi]
            value = self.info.eq_predicates[column]
            lo_off = int(np.searchsorted(data, value, side="left"))
            hi_off = int(np.searchsorted(data, value, side="right"))
            lo, hi = lo + lo_off, lo + hi_off
        if self.uses_range:
            column = self.index.columns[self.eq_prefix_len]
            spec = self.info.range_predicates[column]
            data = cols[column][lo:hi]
            if spec.lo is not None:
                side = "left" if spec.lo_inclusive else "right"
                lo_off = int(np.searchsorted(data, spec.lo, side=side))
            else:
                lo_off = 0
            if spec.hi is not None:
                side = "right" if spec.hi_inclusive else "left"
                hi_off = int(np.searchsorted(data, spec.hi, side=side))
            else:
                hi_off = len(data)
            lo, hi = lo + lo_off, lo + hi_off
        n_entries = hi - lo
        index.charge_descent()
        pages = index.charge_leaf_pages(max(n_entries, 1))
        runtime.metered.add_reads(index.geometry().height + pages)
        runtime.metered.add_cpu(n_entries *
                                runtime.params.cpu_index_tuple_cost *
                                self.index.compression.cpu_factor)
        runtime.metered.rows_examined += n_entries
        return LeafStream(cols, rids,
                          np.arange(lo, hi, dtype=np.int64))

    def locate(self, runtime: PlanRuntime) -> LeafStream:
        return self.run(runtime)

    def label(self) -> str:
        parts = [self.index.label, f"eq_prefix={self.eq_prefix_len}"]
        if self.uses_range:
            parts.append("range")
        return f"SeekIndex({', '.join(parts)})"


@dataclass(frozen=True)
class ScanIndexLeaf(PlanNode):
    """Read the whole leaf level of a covering index instead of the
    (wider) heap."""

    index: IndexDef
    geometry: IndexGeometry

    def estimate(self, stats, params) -> Cost:
        return cost_index_only_scan(stats, self.geometry, params)

    def run(self, runtime: PlanRuntime) -> LeafStream:
        index = runtime.indexes[self.index]
        cols, rids = index.leaf_arrays()
        pages = index.charge_full_leaf_scan()
        runtime.metered.add_reads(pages)
        runtime.metered.add_cpu(len(rids) *
                                runtime.params.cpu_index_tuple_cost *
                                self.index.compression.cpu_factor)
        runtime.metered.rows_examined += len(rids)
        return LeafStream(cols, rids,
                          np.arange(len(rids), dtype=np.int64))

    def locate(self, runtime: PlanRuntime) -> LeafStream:
        return self.run(runtime)

    def label(self) -> str:
        return f"ScanIndexLeaf({self.index.label})"


# ----------------------------------------------------------------------
# interior operators
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Filter(PlanNode):
    """Residual predicate evaluation over a stream's visible columns.

    Selectivity is already folded into the downstream operators'
    estimates (the planner's ``in_key_residual``), so a Filter adds no
    estimated cost of its own.
    """

    child: PlanNode
    eq: Tuple[Tuple[str, Value], ...] = ()
    ranges: Tuple[Tuple[str, "RangeSpec"], ...] = ()
    neq: Tuple[Tuple[str, Value], ...] = ()

    def estimate(self, stats, params) -> Cost:
        return self.child.estimate(stats, params)

    def _apply(self, stream: Stream) -> Stream:
        mask = np.ones(len(stream), dtype=bool)
        for column, value in self.eq:
            mask &= stream.column(column) == value
        for column, spec in self.ranges:
            mask &= range_mask(stream.column(column), spec)
        for column, value in self.neq:
            mask &= stream.column(column) != value
        return stream.select(mask)

    def run(self, runtime: PlanRuntime) -> Stream:
        return self._apply(self.child.run(runtime))

    def locate(self, runtime: PlanRuntime) -> Stream:
        return self._apply(self.child.locate(runtime))

    def label(self) -> str:
        parts = [f"{c} = {v!r}" for c, v in self.eq]
        parts.extend(f"{c} in {_range_text(s)}"
                     for c, s in self.ranges)
        parts.extend(f"{c} != {v!r}" for c, v in self.neq)
        return f"Filter({', '.join(parts)})"


@dataclass(frozen=True)
class FetchHeap(PlanNode):
    """Random heap fetches for the rows a non-covering seek selected.

    ``locate`` skips the fetch charges entirely: DML row targeting
    needs the rids, not the row contents.
    """

    child: PlanNode
    info: "QueryInfo"
    index: IndexDef
    eq_prefix_len: int
    uses_range: bool

    def estimate(self, stats, params) -> Cost:
        key_sel = seek_key_selectivity(self.info, stats,
                                       self.index.columns,
                                       self.eq_prefix_len,
                                       self.uses_range)
        residual = in_key_residual_selectivity(
            self.info, stats, self.index.columns, self.eq_prefix_len,
            self.uses_range)
        return self.child.estimate(stats, params) + cost_heap_fetch(
            stats, key_sel, residual, params)

    def run(self, runtime: PlanRuntime) -> HeapStream:
        stream = self.child.run(runtime)
        rids = stream.rids
        if len(rids):
            pages = np.unique(rids // runtime.table.rows_per_page)
            runtime.buffer_manager.read_pages(
                runtime.table.object_id, (int(p) for p in pages))
            runtime.metered.add_reads(float(len(pages)) *
                                      runtime.params.random_io_factor)
            runtime.metered.add_cpu(len(rids) *
                                    runtime.params.cpu_tuple_cost)
        return HeapStream(runtime.table, rids)

    def locate(self, runtime: PlanRuntime) -> HeapStream:
        stream = self.child.locate(runtime)
        return HeapStream(runtime.table, stream.rids)

    def label(self) -> str:
        return f"FetchHeap({self.info.table})"


@dataclass(frozen=True)
class Sort(PlanNode):
    """ORDER BY: a stable in-memory sort of the stream — or, when the
    child already provides the order (``presorted``), a free pass
    (reversed for DESC)."""

    child: PlanNode
    column: str
    descending: bool
    presorted: bool
    est_rows: float

    def estimate(self, stats, params) -> Cost:
        base = self.child.estimate(stats, params)
        if self.presorted:
            return base
        return base + cost_sort(self.est_rows, params)

    def run(self, runtime: PlanRuntime) -> Stream:
        stream = self.child.run(runtime)
        if len(stream) == 0:
            return stream
        if self.presorted:
            return stream.reverse() if self.descending else stream
        values = stream.column(self.column)
        order = np.argsort(values, kind="stable")
        if self.descending:
            order = order[::-1]
        runtime.metered.add_cpu(
            runtime.params.cpu_sort_factor * len(stream) *
            max(1.0, np.log2(len(stream) + 1)))
        return stream.take(order)

    def locate(self, runtime: PlanRuntime) -> Stream:
        # Row targeting is order-insensitive: skip the sort (and its
        # CPU charge) entirely.
        return self.child.locate(runtime)

    def label(self) -> str:
        direction = " DESC" if self.descending else ""
        note = ", presorted" if self.presorted else ""
        return f"Sort({self.column}{direction}{note})"


@dataclass(frozen=True)
class Project(PlanNode):
    """Project the output columns out of the stream.

    Heap-backed streams get the non-key predicates re-checked against
    the heap first (the full-scan/view paths evaluated them already,
    making it a no-op there; the fetch path genuinely needs it).
    Covering streams project straight from the leaf columns.
    """

    child: PlanNode
    info: "QueryInfo"

    def estimate(self, stats, params) -> Cost:
        return self.child.estimate(stats, params)

    def run(self, runtime: PlanRuntime) -> Rows:
        stream = self.child.run(runtime)
        if isinstance(stream, LeafStream):
            out_cols = [stream.column(c)
                        for c in self.info.select_columns]
            return rows_from_columns(out_cols, len(stream))
        rids = stream.rids
        out_cols = [runtime.table.column_array(c)[rids]
                    for c in self.info.select_columns]
        selected = np.nonzero(self._heap_recheck(runtime, rids))[0]
        out_cols = [c[selected] for c in out_cols]
        return rows_from_columns(out_cols, len(selected))

    def locate(self, runtime: PlanRuntime) -> np.ndarray:
        stream = self.child.locate(runtime)
        rids = stream.rids
        if len(rids) == 0:
            return np.asarray(rids, dtype=np.int64)
        return rids[self._heap_recheck(runtime, rids)]

    def _heap_recheck(self, runtime: PlanRuntime,
                      rids: np.ndarray) -> np.ndarray:
        table = runtime.table
        mask = np.ones(len(rids), dtype=bool)
        for column, value in self.info.eq_predicates.items():
            mask &= table.column_array(column)[rids] == value
        for column, spec in self.info.range_predicates.items():
            mask &= range_mask(table.column_array(column)[rids], spec)
        for predicate in self.info.neq_predicates:
            mask &= (table.column_array(predicate.column)[rids]
                     != predicate.value)
        return mask

    def label(self) -> str:
        return f"Project({', '.join(self.info.select_columns)})"


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Fold the projected rows into one aggregate tuple."""

    child: PlanNode
    info: "QueryInfo"

    def estimate(self, stats, params) -> Cost:
        return self.child.estimate(stats, params)

    def run(self, runtime: PlanRuntime) -> Rows:
        return [aggregate_rows(self.info, self.child.run(runtime))]

    def locate(self, runtime: PlanRuntime):
        return self.child.locate(runtime)

    def label(self) -> str:
        return (f"Aggregate("
                f"{', '.join(a.sql() for a in self.info.aggregates)})")


@dataclass(frozen=True)
class GroupAggregate(PlanNode):
    """GROUP BY fold: one row per distinct group value, ordered by the
    group value."""

    child: PlanNode
    info: "QueryInfo"

    def estimate(self, stats, params) -> Cost:
        return self.child.estimate(stats, params)

    def run(self, runtime: PlanRuntime) -> Rows:
        return group_and_aggregate(self.info, self.child.run(runtime))

    def locate(self, runtime: PlanRuntime):
        return self.child.locate(runtime)

    def label(self) -> str:
        aggregates = ', '.join(a.sql() for a in self.info.aggregates)
        return f"GroupAggregate({self.info.group_by}; {aggregates})"


# ----------------------------------------------------------------------
# shared estimation helpers
# ----------------------------------------------------------------------

def seek_key_selectivity(info: "QueryInfo", stats: TableStats,
                         columns: Sequence[str], eq_prefix_len: int,
                         uses_range: bool) -> float:
    """Selectivity of a seek's equality prefix plus optional range —
    the exact product the planner's enumeration uses."""
    selectivities: List[float] = []
    for column in columns[:eq_prefix_len]:
        selectivities.append(stats.column(column).selectivity_eq(
            info.eq_predicates[column]))
    if uses_range:
        column = columns[eq_prefix_len]
        spec = info.range_predicates[column]
        selectivities.append(stats.column(column).selectivity_range(
            spec.lo, spec.hi, spec.lo_inclusive, spec.hi_inclusive))
    return combined_selectivity(selectivities)


def in_key_residual_selectivity(info: "QueryInfo", stats: TableStats,
                                columns: Sequence[str],
                                eq_prefix_len: int,
                                uses_range: bool) -> float:
    """Fraction of seek output that passes the predicates on *other
    key columns* (they filter entries before any heap fetch)."""
    from .planner import predicate_selectivity
    seek_columns = set(columns[:eq_prefix_len])
    if uses_range:
        seek_columns.add(columns[eq_prefix_len])
    return combined_selectivity([
        predicate_selectivity(info, stats, c)
        for c in info.predicate_columns
        if c in columns and c not in seek_columns])


# ----------------------------------------------------------------------
# shared execution helpers
# ----------------------------------------------------------------------

def range_mask(data: np.ndarray, spec: "RangeSpec") -> np.ndarray:
    mask = np.ones(len(data), dtype=bool)
    if spec.lo is not None:
        mask &= (data >= spec.lo) if spec.lo_inclusive else (data > spec.lo)
    if spec.hi is not None:
        mask &= (data <= spec.hi) if spec.hi_inclusive else (data < spec.hi)
    return mask


def rows_from_columns(columns: Sequence[np.ndarray],
                      n_rows: int) -> Rows:
    out: Rows = []
    for i in range(n_rows):
        out.append(tuple(scalar_value(col[i]) for col in columns))
    return out


def scalar_value(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


def aggregate_rows(info: "QueryInfo",
                   rows: Sequence[Tuple[Value, ...]]
                   ) -> Tuple[Value, ...]:
    """Fold projected rows into one aggregate tuple.

    SQL semantics on empty input: COUNT -> 0, the rest -> None.
    ``rows`` are projections of ``info.select_columns`` (the distinct
    aggregate input columns).
    """
    position = {column: i
                for i, column in enumerate(info.select_columns)}
    out = []
    for aggregate in info.aggregates:
        if aggregate.func == "COUNT" and aggregate.column is None:
            out.append(len(rows))
            continue
        values = [row[position[aggregate.column]] for row in rows]
        if aggregate.func == "COUNT":
            out.append(len(values))
        elif not values:
            out.append(None)
        elif aggregate.func == "MIN":
            out.append(min(values))
        elif aggregate.func == "MAX":
            out.append(max(values))
        elif aggregate.func == "SUM":
            out.append(sum(values))
        else:  # AVG
            out.append(sum(values) / len(values))
    return tuple(out)


def group_and_aggregate(info: "QueryInfo",
                        rows: Sequence[Tuple[Value, ...]]
                        ) -> Rows:
    """GROUP BY fold: one output row per distinct group value, shaped
    ``(group_value, *aggregates)``, ordered by the group value
    (descending when ORDER BY ... DESC names the group column)."""
    group_position = {column: i for i, column
                      in enumerate(info.select_columns)}[info.group_by]
    groups: Dict[Value, List[Tuple[Value, ...]]] = {}
    for row in rows:
        groups.setdefault(row[group_position], []).append(row)
    descending = (info.order_by is not None and
                  info.order_by.descending)
    out: Rows = []
    for value in sorted(groups, reverse=descending):
        folded = aggregate_rows(info, groups[value])
        out.append((value,) + folded)
    return out


def _range_text(spec: "RangeSpec") -> str:
    lo = "(" if not spec.lo_inclusive else "["
    hi = ")" if not spec.hi_inclusive else "]"
    lo_value = "-inf" if spec.lo is None else repr(spec.lo)
    hi_value = "+inf" if spec.hi is None else repr(spec.hi)
    return f"{lo}{lo_value}, {hi_value}{hi}"

"""Materialized projection views as physical-design structures.

The paper defines a physical design as "a set of structures (e.g.,
indexes or materialized views)". This module adds the second kind: a
*projection view* stores a column subset of its base table in heap
order. It cannot be seeked (that is what indexes are for), but any
query referencing only its columns can scan it instead of the wider
base heap — cheaper in proportion to the width ratio — and it is
cheaper to build than an index (one scan, one write pass, no sort).

Views participate everywhere indexes do: hypothetical view geometry in
the what-if optimizer, a ``view_scan`` access path in the planner
(realized as a :class:`~repro.sqlengine.plan.ScanView` operator in the
shared plan IR, so the what-if optimizer and the executor cost and run
the same tree), metered execution, SIZE/TRANS accounting, and
``Database.apply_configuration``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError
from .buffer import BufferManager
from .compression import Compression
from .index import compressed_width
from .schema import TableSchema
from .storage import HeapTable, PAGE_SIZE_BYTES

#: Per-row overhead in a view page (smaller than a heap row header —
#: views carry no null bitmap of their own in this engine).
VIEW_ROW_OVERHEAD = 4

#: Fill factor of view pages.
VIEW_FILL_FACTOR = 0.96


@dataclass(frozen=True)
class ViewDef:
    """Logical identity of a projection view.

    Attributes:
        table: base table.
        columns: the projected columns (stored sorted; a projection
            has no column order).
        compression: the variant's :class:`Compression` level —
            part of the identity, exactly as on
            :class:`~repro.sqlengine.index.IndexDef`.
    """

    table: str
    columns: Tuple[str, ...]
    compression: Compression = Compression.NONE

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("a view needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(
                f"duplicate column in view over {self.columns}")
        object.__setattr__(self, "columns",
                           tuple(sorted(self.columns)))

    @property
    def label(self) -> str:
        return f"V({','.join(self.columns)}){self.compression.suffix}"

    def covers(self, column_names: Sequence[str]) -> bool:
        """True if every referenced column is stored in the view."""
        return set(column_names) <= set(self.columns)

    def with_compression(self, compression: Compression) -> "ViewDef":
        """The same logical view at another compression level."""
        return ViewDef(self.table, self.columns, compression)

    def default_name(self) -> str:
        name = f"mv_{self.table}_{'_'.join(self.columns)}"
        if self.compression is not Compression.NONE:
            name += f"_{self.compression.name.lower()}"
        return name

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class ViewGeometry:
    """Page-level shape of a (possibly hypothetical) projection view.

    ``cpu_factor``/``build_cpu_factor`` carry the compression level's
    decode/encode inflation (both exactly ``1.0`` at NONE).
    """

    nrows: int
    row_width: int
    rows_per_page: int
    n_pages: int
    cpu_factor: float = 1.0
    build_cpu_factor: float = 1.0

    @classmethod
    def compute(cls, schema: TableSchema, columns: Sequence[str],
                nrows: int,
                compression: Compression = Compression.NONE
                ) -> "ViewGeometry":
        row_width = compressed_width(
            schema.width_of(columns) + VIEW_ROW_OVERHEAD, compression)
        usable = PAGE_SIZE_BYTES * VIEW_FILL_FACTOR
        rows_per_page = max(1, int(usable // row_width))
        n_pages = max(1, math.ceil(nrows / rows_per_page)) if nrows \
            else 1
        return cls(nrows=nrows, row_width=row_width,
                   rows_per_page=rows_per_page, n_pages=n_pages,
                   cpu_factor=compression.cpu_factor,
                   build_cpu_factor=compression.build_cpu_factor)

    @property
    def size_bytes(self) -> int:
        return self.n_pages * PAGE_SIZE_BYTES


class MaterializedView:
    """A materialized projection view over a heap table.

    The view shares the base table's row ids (it is a pure projection),
    so query evaluation reads the base column arrays while page
    *charging* follows the view's narrower geometry — exactly the
    benefit a real projection view provides.
    """

    def __init__(self, definition: ViewDef, table: HeapTable,
                 buffer_manager: BufferManager,
                 name: Optional[str] = None):
        if definition.table != table.schema.name:
            raise SchemaError(
                f"view on {definition.table!r} cannot attach to table "
                f"{table.schema.name!r}")
        for column in definition.columns:
            table.schema.column(column)
        self.definition = definition
        self.name = name or definition.default_name()
        self.table = table
        self.buffer_manager = buffer_manager
        self.object_id = buffer_manager.allocate_object_id()
        self._build()

    def _build(self) -> None:
        """Materialize: scan the base heap, write the view pages.

        The ``view_build`` fault site fires at entry; each page touch
        is additionally a ``page_read``/``page_write`` site. Atomicity
        on fault is the caller's job (:meth:`Database._transition`).
        """
        injector = self.buffer_manager.fault_injector
        if injector is not None:
            injector.on_build_step("view_build", self.definition.label,
                                   self.buffer_manager.metrics)
        self.table.scan_pages()
        geometry = self.geometry()
        for page in range(geometry.n_pages):
            self.buffer_manager.write_page((self.object_id, page))

    def geometry(self) -> ViewGeometry:
        return ViewGeometry.compute(self.table.schema,
                                    self.definition.columns,
                                    self.table.nrows,
                                    self.definition.compression)

    def charge_scan(self) -> int:
        """Meter a full sequential scan of the view."""
        geometry = self.geometry()
        self.buffer_manager.read_range(self.object_id,
                                       geometry.n_pages)
        return geometry.n_pages

    def column_array(self, name: str) -> np.ndarray:
        if name not in self.definition.columns:
            raise SchemaError(
                f"view {self.name!r} does not store column {name!r}")
        return self.table.column_array(name)

    def on_change(self) -> None:
        """DML on the base table: charge one view page write (the
        projection mirrors the change)."""
        self.buffer_manager.write_page((self.object_id, 0))

    def __repr__(self) -> str:
        return (f"MaterializedView({self.definition.label}, "
                f"name={self.name!r})")
